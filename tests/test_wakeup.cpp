// Unit tests of the wakeup-tree subsystem (mc/wakeup.hpp): canonical
// event identity, frame-independent step resolution, weak initials,
// parsimonious dependent-core pruning, and the ordered-tree insertion /
// subsumption / take invariants documented in src/mc/README.md. The
// engine-level guarantees (optimality, oracle agreement) live in
// tests/test_dpor.cpp.
#include <gtest/gtest.h>

#include <algorithm>

#include "lang/builder.hpp"
#include "mc/wakeup.hpp"

namespace rc11::mc {
namespace {

// --- Step helpers -------------------------------------------------------------

WakeupStep mem(c11::ThreadId t, c11::ActionKind kind, c11::VarId var,
               c11::Value rval = 0, c11::Value wval = 0) {
  WakeupStep w;
  w.thread = t;
  w.silent = false;
  w.action = {kind, var, rval, wval};
  return w;
}

WakeupStep silent(c11::ThreadId t) {
  WakeupStep w;
  w.thread = t;
  w.silent = true;
  return w;
}

// --- Canonical event identity -------------------------------------------------

TEST(CanonicalEvents, RoundTripAndFrameIndependence) {
  // Two threads writing distinct variables: appending in either order
  // yields different tags but identical canonical ids.
  lang::ProgramBuilder b;
  auto x = b.var("x", 0);
  auto y = b.var("y", 0);
  b.thread({lang::assign(x, 1)});
  b.thread({lang::assign(y, 1)});
  const lang::Program p = std::move(b).build();

  interp::Config c1 = interp::initial_config(p);
  interp::Config c2 = interp::initial_config(p);
  std::vector<interp::Step> steps;
  interp::StepOptions opts;

  // c1: thread 1 then thread 2; c2: thread 2 then thread 1.
  interp::enumerate_steps(c1, opts, steps);
  (void)interp::apply_step(c1, steps[0], opts);
  interp::enumerate_steps(c1, opts, steps);
  (void)interp::apply_step(
      c1, *std::find_if(steps.begin(), steps.end(),
                        [](const interp::Step& s) { return s.thread == 2; }),
      opts);

  interp::enumerate_steps(c2, opts, steps);
  (void)interp::apply_step(
      c2, *std::find_if(steps.begin(), steps.end(),
                        [](const interp::Step& s) { return s.thread == 2; }),
      opts);
  interp::enumerate_steps(c2, opts, steps);
  (void)interp::apply_step(c2, steps[0], opts);

  // Every event round-trips through its canonical id, in both frames.
  for (const interp::Config* c : {&c1, &c2}) {
    for (c11::EventId e = 0; e < c->exec.size(); ++e) {
      const interp::CanonicalEventId cid =
          interp::canonical_event_id(c->exec, e);
      EXPECT_EQ(interp::resolve_canonical_event(c->exec, cid), e);
    }
  }
  // Thread 1's write has the same canonical id in both interleavings,
  // though its tag differs.
  const auto find_write = [](const interp::Config& c, c11::VarId var) {
    for (c11::EventId e = 0; e < c.exec.size(); ++e) {
      if (!c.exec.event(e).is_init() && c.exec.event(e).is_write() &&
          c.exec.event(e).var() == var) {
        return e;
      }
    }
    return c11::kNoEvent;
  };
  const c11::EventId w1 = find_write(c1, 0);
  const c11::EventId w2 = find_write(c2, 0);
  EXPECT_NE(w1, w2);  // tags shift with the interleaving...
  EXPECT_EQ(interp::canonical_event_id(c1.exec, w1),
            interp::canonical_event_id(c2.exec, w2));  // ...canonical ids don't
}

TEST(CanonicalEvents, UnreplayedEventResolvesToNoEvent) {
  lang::ProgramBuilder b;
  auto x = b.var("x", 0);
  b.thread({lang::assign(x, 1)});
  const lang::Program p = std::move(b).build();
  const interp::Config c = interp::initial_config(p);
  // Thread 1's first event does not exist in the initial frame.
  EXPECT_EQ(interp::resolve_canonical_event(c.exec, {1, 0}), c11::kNoEvent);
}

// --- Weak initials and the dependent core -------------------------------------

TEST(WakeupSequences, WeakInitials) {
  // v = [t1 wr x, t2 wr y, t3 wr x]: t1 and t2 are weak initials; t3's
  // write of x has the dependent predecessor t1.
  const WakeupSequence v = {mem(1, c11::ActionKind::kWrX, 0),
                            mem(2, c11::ActionKind::kWrX, 1),
                            mem(3, c11::ActionKind::kWrX, 0)};
  std::vector<std::size_t> wi;
  weak_initials(v, wi);
  EXPECT_EQ(wi, (std::vector<std::size_t>{0, 1}));
}

TEST(WakeupSequences, DependentCorePruning) {
  // Final step t = t3 wr x. The t2 write of y has no dependence path to
  // it and is pruned; the t1 write of x stays (direct conflict), as does
  // the silent step of t3 (program order into t... silent steps are
  // cross-thread independent, same-thread dependent).
  WakeupSequence v = {mem(1, c11::ActionKind::kWrX, 0),
                      mem(2, c11::ActionKind::kWrX, 1), silent(3),
                      mem(3, c11::ActionKind::kWrX, 0)};
  prune_to_dependent_core(v);
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0].thread, 1u);
  EXPECT_EQ(v[1].thread, 3u);
  EXPECT_TRUE(v[1].silent);
  EXPECT_EQ(v[2].thread, 3u);
}

TEST(WakeupSequences, CorePredecessorsStayExecutable) {
  // A chain a -> b -> t through distinct threads: every dependence
  // predecessor of a core step must itself be in the core.
  WakeupSequence v = {mem(1, c11::ActionKind::kWrX, 0),   // a: conflicts b
                      mem(2, c11::ActionKind::kRdX, 0),   // b: conflicts t? no
                      mem(4, c11::ActionKind::kWrX, 1),   // unrelated
                      mem(3, c11::ActionKind::kWrX, 0)};  // t
  prune_to_dependent_core(v);
  ASSERT_EQ(v.size(), 3u);  // a and b kept (a->b->?): b rd x conflicts t wr x
  EXPECT_EQ(v[0].thread, 1u);
  EXPECT_EQ(v[1].thread, 2u);
  EXPECT_EQ(v[2].thread, 3u);
}

// --- Tree insertion / subsumption ---------------------------------------------

TEST(WakeupTreeInsert, NewBranchThenExactSubsume) {
  WakeupTree tree;
  const WakeupSequence v = {mem(1, c11::ActionKind::kWrX, 0),
                            mem(2, c11::ActionKind::kWrX, 0)};
  WakeupTree::NodeId branch = WakeupTree::kNil;
  EXPECT_EQ(tree.insert(v, &branch), WakeupTree::Insert::kNewBranch);
  ASSERT_NE(branch, WakeupTree::kNil);
  EXPECT_EQ(tree.node(branch).step.thread, 1u);
  EXPECT_EQ(tree.node_count(), 2u);

  // Same sequence again: covered by the existing branch, nothing added.
  EXPECT_EQ(tree.insert(v, &branch), WakeupTree::Insert::kSubsumed);
  EXPECT_EQ(tree.node_count(), 2u);
}

TEST(WakeupTreeInsert, EquivalentReorderingIsSubsumed) {
  // [t1 wr x, t2 wr y] and [t2 wr y, t1 wr x] are Mazurkiewicz
  // equivalent (independent steps): the second insert must recognise the
  // first branch as covering it.
  WakeupTree tree;
  const WakeupSequence v1 = {mem(1, c11::ActionKind::kWrX, 0),
                             mem(2, c11::ActionKind::kWrX, 1)};
  const WakeupSequence v2 = {mem(2, c11::ActionKind::kWrX, 1),
                             mem(1, c11::ActionKind::kWrX, 0)};
  WakeupTree::NodeId branch = WakeupTree::kNil;
  EXPECT_EQ(tree.insert(v1, &branch), WakeupTree::Insert::kNewBranch);
  EXPECT_EQ(tree.insert(v2, nullptr), WakeupTree::Insert::kSubsumed);
  EXPECT_EQ(tree.node_count(), 2u);
}

TEST(WakeupTreeInsert, ConflictingOrdersBothKept) {
  // [t1 wr x, t2 wr x] and [t2 wr x, t1 wr x] conflict: neither order
  // covers the other, so both branches must exist, in insertion order.
  WakeupTree tree;
  const WakeupSequence v1 = {mem(1, c11::ActionKind::kWrX, 0),
                             mem(2, c11::ActionKind::kWrX, 0)};
  const WakeupSequence v2 = {mem(2, c11::ActionKind::kWrX, 0),
                             mem(1, c11::ActionKind::kWrX, 0)};
  EXPECT_EQ(tree.insert(v1, nullptr), WakeupTree::Insert::kNewBranch);
  EXPECT_EQ(tree.insert(v2, nullptr), WakeupTree::Insert::kNewBranch);
  ASSERT_EQ(tree.branch_count(), 2u);
  const WakeupTree::NodeId b1 = tree.first_branch();
  const WakeupTree::NodeId b2 = tree.node(b1).next_sibling;
  EXPECT_EQ(tree.node(b1).step.thread, 1u);  // insertion order kept
  EXPECT_EQ(tree.node(b2).step.thread, 2u);
  EXPECT_EQ(tree.node_count(), 4u);
}

TEST(WakeupTreeInsert, LeafSubsumesLongerSequence) {
  // A leaf u with u [= v (v extends u): exploration past the leaf is
  // free and will cover v, so nothing may be inserted.
  WakeupTree tree;
  const WakeupSequence u = {mem(1, c11::ActionKind::kWrX, 0)};
  const WakeupSequence v = {mem(1, c11::ActionKind::kWrX, 0),
                            mem(2, c11::ActionKind::kWrX, 0)};
  EXPECT_EQ(tree.insert(u, nullptr), WakeupTree::Insert::kNewBranch);
  EXPECT_EQ(tree.insert(v, nullptr), WakeupTree::Insert::kSubsumed);
  EXPECT_EQ(tree.node_count(), 1u);
}

TEST(WakeupTreeInsert, DivergingSuffixExtendsBelowSharedPrefix) {
  // Two sequences sharing a first step but with conflicting suffixes:
  // the second is grafted below the shared prefix, not at toplevel.
  WakeupTree tree;
  const WakeupSequence v1 = {mem(1, c11::ActionKind::kWrX, 0),
                             mem(2, c11::ActionKind::kWrX, 0),
                             mem(3, c11::ActionKind::kWrX, 0)};
  const WakeupSequence v2 = {mem(1, c11::ActionKind::kWrX, 0),
                             mem(3, c11::ActionKind::kWrX, 0),
                             mem(2, c11::ActionKind::kWrX, 0)};
  EXPECT_EQ(tree.insert(v1, nullptr), WakeupTree::Insert::kNewBranch);
  EXPECT_EQ(tree.insert(v2, nullptr), WakeupTree::Insert::kExtended);
  ASSERT_EQ(tree.branch_count(), 1u);
  const WakeupTree::NodeId root = tree.first_branch();
  std::size_t children = 0;
  for (WakeupTree::NodeId c = tree.node(root).first_child;
       c != WakeupTree::kNil; c = tree.node(c).next_sibling) {
    ++children;
  }
  EXPECT_EQ(children, 2u);
}

TEST(WakeupTreeInsert, ExecutedStepSubsumes) {
  // A free-scheduled executed step behaves like a taken leaf branch:
  // any sequence it weakly prefixes is covered.
  WakeupTree tree;
  (void)tree.add_executed(mem(1, c11::ActionKind::kWrX, 0));
  const WakeupSequence v = {mem(1, c11::ActionKind::kWrX, 0),
                            mem(2, c11::ActionKind::kWrX, 0)};
  EXPECT_EQ(tree.insert(v, nullptr), WakeupTree::Insert::kSubsumed);
  // A conflicting other-order sequence is NOT covered by it.
  const WakeupSequence v2 = {mem(2, c11::ActionKind::kWrX, 0),
                             mem(1, c11::ActionKind::kWrX, 0)};
  EXPECT_EQ(tree.insert(v2, nullptr), WakeupTree::Insert::kNewBranch);
}

TEST(WakeupTreeInsert, WildcardAndConcreteInstanceStayDistinctBranches) {
  // A wildcard branch and a concrete-instance sequence of the same
  // command do NOT subsume each other at insertion: the concrete
  // sequence may carry continuation guidance the wildcard lacks, and one
  // instance never covers the command's other data choices. The overlap
  // is resolved at execution time (a leaf branch whose exact step a
  // sibling already claimed is retired without exploring anything).
  WakeupTree tree;
  WakeupStep wild = mem(1, c11::ActionKind::kRdX, 0);
  wild.any_data = true;
  EXPECT_EQ(tree.insert({wild}, nullptr), WakeupTree::Insert::kNewBranch);
  WakeupStep concrete = mem(1, c11::ActionKind::kRdX, 0, /*rval=*/1);
  concrete.has_observed = true;
  concrete.observed = {0, 0};
  EXPECT_EQ(tree.insert({concrete}, nullptr),
            WakeupTree::Insert::kNewBranch);
  EXPECT_EQ(tree.branch_count(), 2u);
  // Wildcards do subsume equal wildcards.
  EXPECT_EQ(tree.insert({wild}, nullptr), WakeupTree::Insert::kSubsumed);
}

TEST(WakeupTreeTake, DetachesSubtreeAndLeavesTakenMarker) {
  WakeupTree tree;
  const WakeupSequence v = {mem(1, c11::ActionKind::kWrX, 0),
                            mem(2, c11::ActionKind::kWrX, 0)};
  WakeupTree::NodeId branch = WakeupTree::kNil;
  EXPECT_EQ(tree.insert(v, &branch), WakeupTree::Insert::kNewBranch);

  const WakeupTree subtree = tree.take(branch);
  ASSERT_EQ(subtree.branch_count(), 1u);
  EXPECT_EQ(subtree.node(subtree.first_branch()).step.thread, 2u);
  EXPECT_TRUE(tree.node(branch).taken);
  EXPECT_EQ(tree.node(branch).first_child, WakeupTree::kNil);

  // Anything the taken branch weakly prefixes is covered by the detached
  // subtree's exploration.
  const WakeupSequence v2 = {mem(1, c11::ActionKind::kWrX, 0),
                             mem(3, c11::ActionKind::kWrX, 0)};
  EXPECT_EQ(tree.insert(v2, nullptr), WakeupTree::Insert::kSubsumed);
}

}  // namespace
}  // namespace rc11::mc
