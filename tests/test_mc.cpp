// Tests for the model checker: exploration, dedup, invariants,
// reachability, outcome enumeration, traces, truncation, and the parallel
// explorer's agreement with the sequential one.
#include <gtest/gtest.h>

#include "lang/builder.hpp"
#include "lang/parser.hpp"
#include "mc/checker.hpp"
#include "mc/parallel.hpp"

namespace rc11::mc {
namespace {

using lang::assign;
using lang::constant;
using lang::ProgramBuilder;
using lang::reg_assign;

lang::Program two_writers() {
  ProgramBuilder b;
  auto x = b.var("x", 0);
  b.thread({assign(x, 1)});
  b.thread({assign(x, 2)});
  return std::move(b).build();
}

TEST(Explorer, VisitsAllStatesOfTwoWriters) {
  ExploreResult r = explore(two_writers(), {}, {});
  // States: init, two one-write states, two final mo-orders = 5 (dedup
  // merges nothing here since all states differ).
  EXPECT_EQ(r.stats.states, 5u);
  EXPECT_EQ(r.stats.finals, 2u);
  EXPECT_FALSE(r.aborted);
}

TEST(Explorer, DedupMergesCommutingSteps) {
  ProgramBuilder b;
  auto x = b.var("x", 0);
  auto y = b.var("y", 0);
  b.thread({assign(x, 1)});
  b.thread({assign(y, 1)});
  const lang::Program p = std::move(b).build();
  ExploreResult r = explore(p, {}, {});
  // Diamond: init, two middles, ONE final (merged).
  EXPECT_EQ(r.stats.states, 4u);
  EXPECT_EQ(r.stats.merged, 1u);
  EXPECT_EQ(r.stats.finals, 1u);

  ExploreOptions no_dedup;
  no_dedup.dedup = false;
  ExploreResult r2 = explore(p, no_dedup, {});
  EXPECT_EQ(r2.stats.states, 5u);  // final counted twice
}

TEST(Explorer, OnStateAbortStopsSearch) {
  Visitor v;
  std::size_t seen = 0;
  v.on_state = [&](const interp::Config&) { return ++seen < 2; };
  ExploreResult r = explore(two_writers(), {}, v);
  EXPECT_TRUE(r.aborted);
  EXPECT_EQ(seen, 2u);
  EXPECT_FALSE(r.abort_trace.empty());
}

TEST(Explorer, MaxStatesTruncates) {
  ExploreOptions opts;
  opts.max_states = 2;
  ExploreResult r = explore(two_writers(), opts, {});
  EXPECT_TRUE(r.stats.truncated);
}

TEST(Explorer, OnTransitionSeesEveryEdge) {
  std::size_t transitions = 0;
  Visitor v;
  v.on_transition = [&](const interp::Config&, const interp::ConfigStep&) {
    ++transitions;
    return true;
  };
  ExploreResult r = explore(two_writers(), {}, v);
  EXPECT_EQ(transitions, r.stats.transitions);
  EXPECT_GE(transitions, 4u);
}

TEST(Checker, InvariantHoldsTrivially) {
  const InvariantResult r = check_invariant(
      two_writers(), [](const interp::Config&) { return true; });
  EXPECT_TRUE(r.holds);
  EXPECT_TRUE(r.counterexample.empty());
}

TEST(Checker, InvariantViolationYieldsTrace) {
  // "x never ends with 2" is violated.
  ProgramBuilder b;
  auto x = b.var("x", 0);
  b.thread({assign(x, 2)});
  const lang::Program p = std::move(b).build();
  const InvariantResult r =
      check_invariant(p, [xid = x.id](const interp::Config& c) {
        const auto w = c.exec.last(xid);
        return c.exec.event(w).wrval() != 2;
      });
  EXPECT_FALSE(r.holds);
  ASSERT_FALSE(r.counterexample.empty());
  EXPECT_EQ(r.counterexample.entries.back().thread, 1u);
}

TEST(Checker, ReachabilityFindsWitness) {
  const auto parsed = lang::parse_litmus(R"(litmus W
var x = 0
thread 1 { x := 1; }
thread 2 { r0 := x; }
exists (2:r0 == 1)
)");
  const ReachabilityResult r =
      check_reachable(parsed.program, parsed.condition);
  EXPECT_TRUE(r.reachable);
  EXPECT_FALSE(r.witness.empty());
}

TEST(Checker, ReachabilityRejectsImpossible) {
  const auto parsed = lang::parse_litmus(R"(litmus W2
var x = 0
thread 1 { x := 1; }
thread 2 { r0 := x; }
exists (2:r0 == 9)
)");
  const ReachabilityResult r =
      check_reachable(parsed.program, parsed.condition);
  EXPECT_FALSE(r.reachable);
}

TEST(Checker, OutcomesEnumerateFinalValues) {
  const auto parsed = lang::parse_litmus(R"(litmus O
var x = 0
thread 1 { x := 1; }
thread 2 { r0 := x; }
)");
  const OutcomeResult r = enumerate_outcomes(parsed.program);
  // r0 in {0, 1}; final x always 1.
  EXPECT_EQ(r.outcomes.size(), 2u);
  for (const Outcome& o : r.outcomes) {
    EXPECT_EQ(o.final_vars[0], 1);
  }
}

TEST(Checker, CollectFinalExecutionsDistinguishesMoOrders) {
  const auto keys = collect_final_executions(two_writers());
  EXPECT_EQ(keys.size(), 2u);
}

TEST(Checker, TauCompressionPreservesOutcomes) {
  const auto parsed = lang::parse_litmus(R"(litmus TC
var x = 0
var y = 0
thread 1 { x := 1; r0 := y; }
thread 2 { y := 1; r1 := x; }
)");
  ExploreOptions plain;
  ExploreOptions compressed;
  compressed.step.tau_compress = true;
  const auto o1 = enumerate_outcomes(parsed.program, plain);
  const auto o2 = enumerate_outcomes(parsed.program, compressed);
  EXPECT_EQ(o1.outcomes, o2.outcomes);
  EXPECT_LT(o2.stats.states, o1.stats.states);
}

TEST(Parallel, AgreesWithSequentialInvariant) {
  ParallelOptions popts;
  popts.workers = 3;
  const auto seq_r = check_invariant(
      two_writers(), [](const interp::Config&) { return true; });
  const auto par_r = check_invariant_parallel(
      two_writers(), [](const interp::Config&) { return true; }, popts);
  EXPECT_TRUE(par_r.holds);
  EXPECT_EQ(par_r.stats.states, seq_r.stats.states);
}

TEST(Parallel, DetectsViolation) {
  ProgramBuilder b;
  auto x = b.var("x", 0);
  b.thread({assign(x, 2)});
  const lang::Program p = std::move(b).build();
  const auto r = check_invariant_parallel(
      p, [xid = x.id](const interp::Config& c) {
        return c.exec.event(c.exec.last(xid)).wrval() != 2;
      });
  EXPECT_FALSE(r.holds);
  // The parent-pointer records give a real counterexample trace.
  ASSERT_FALSE(r.counterexample.empty());
  EXPECT_EQ(r.counterexample.entries.back().thread, 1u);
}

TEST(Parallel, ReachabilityAgrees) {
  const auto parsed = lang::parse_litmus(R"(litmus PR
var x = 0
thread 1 { x := 1; r0 := x; }
thread 2 { x := 2; }
exists (1:r0 == 2)
)");
  const auto seq_r = check_reachable(parsed.program, parsed.condition);
  const auto par_r =
      check_reachable_parallel(parsed.program, parsed.condition);
  EXPECT_EQ(seq_r.reachable, par_r.reachable);
  EXPECT_TRUE(seq_r.reachable);
  EXPECT_FALSE(par_r.witness.empty());
}

TEST(Trace, FormatsEntries) {
  const auto parsed = lang::parse_litmus(R"(litmus T
var x = 0
thread 1 { x := 1; }
thread 2 { r0 := x; }
exists (2:r0 == 1)
)");
  const ReachabilityResult r =
      check_reachable(parsed.program, parsed.condition);
  ASSERT_TRUE(r.reachable);
  const std::string s = r.witness.to_string(&parsed.program.vars());
  EXPECT_NE(s.find("wr(x, 1)"), std::string::npos);
}

TEST(Stats, ToStringMentionsTruncation) {
  ExploreStats st;
  st.truncated = true;
  EXPECT_NE(st.to_string().find("TRUNCATED"), std::string::npos);
}

}  // namespace
}  // namespace rc11::mc
