// Conformance suite over the herd-style .litmus corpus (tests/corpus/):
// the third differential oracle of the ISSUE. Every corpus program is a
// classic published test (SB, MP, LB, IRIW, R, S, 2+2W, WRC, ISA2,
// coherence shapes) with and without fences/SC, annotated with its
// RC11 verdict (`exists` = allowed, `~exists` = forbidden).
//
// For each program, three independent layers must agree with the
// annotation and with each other:
//
//   * all 12 explorer combos — {sequential, parallel} x {full, sleep
//     sets, source-DPOR, source-DPOR+sleep, optimal,
//     optimal-parsimonious} — on the verdict, the outcome set and the
//     final-execution fingerprints (POR bugs are silently missed
//     executions; fences/SC exercise independence clauses the built-in
//     catalogue never reaches);
//   * the axiomatic enumerator: operational and axiomatic final-execution
//     sets coincide (completeness/soundness, now including the Sc axiom);
//   * the optimal wakeup-tree modes report sleep_blocked == 0 on every
//     corpus program, sequentially and in parallel.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

#include "axiomatic/equivalence.hpp"
#include "lang/parser.hpp"
#include "litmus/import.hpp"
#include "mc/checker.hpp"
#include "mc/parallel.hpp"

namespace rc11 {
namespace {

const std::vector<litmus::ImportedTest>& corpus() {
  static const std::vector<litmus::ImportedTest>* tests = [] {
    auto* out = new std::vector<litmus::ImportedTest>();
    try {
      *out = litmus::import_path(RC11_CORPUS_DIR);
    } catch (const litmus::ImportError&) {
      // Left empty; CorpusLoads reports the failure with the message.
    }
    return out;
  }();
  return *tests;
}

TEST(Corpus, Loads) {
  try {
    const auto tests = litmus::import_path(RC11_CORPUS_DIR);
    EXPECT_GE(tests.size(), 30u)
        << "conformance corpus shrank below the ISSUE floor";
  } catch (const litmus::ImportError& e) {
    FAIL() << "corpus import failed: " << e.what();
  }
}

struct Mode {
  const char* name;
  mc::PorMode por;
  bool parallel;
};

constexpr Mode kModes[] = {
    {"seq-full", mc::PorMode::kNone, false},
    {"seq-sleep", mc::PorMode::kSleepSets, false},
    {"seq-dpor", mc::PorMode::kSourceSets, false},
    {"seq-dpor-sleep", mc::PorMode::kSourceSetsSleep, false},
    {"seq-optimal", mc::PorMode::kOptimal, false},
    {"seq-optimal-pars", mc::PorMode::kOptimalParsimonious, false},
    {"par-full", mc::PorMode::kNone, true},
    {"par-sleep", mc::PorMode::kSleepSets, true},
    {"par-dpor", mc::PorMode::kSourceSets, true},
    {"par-dpor-sleep", mc::PorMode::kSourceSetsSleep, true},
    {"par-optimal", mc::PorMode::kOptimal, true},
    {"par-optimal-pars", mc::PorMode::kOptimalParsimonious, true},
};

class ConformanceTest : public ::testing::TestWithParam<std::size_t> {
 protected:
  const litmus::ImportedTest& test() const { return corpus()[GetParam()]; }
};

TEST_P(ConformanceTest, TwelveCombosMatchTheAnnotation) {
  const litmus::ImportedTest& t = test();
  const lang::ParsedLitmus parsed = lang::parse_litmus(t.source);
  const bool expect_reachable =
      t.expected == litmus::Expectation::kAllowed;

  const mc::OutcomeResult full = mc::enumerate_outcomes(parsed.program);
  const auto full_fps = mc::collect_final_executions(parsed.program);
  ASSERT_FALSE(full.stats.truncated) << t.name;

  for (const Mode& m : kModes) {
    if (m.parallel) {
      mc::ParallelOptions po;
      po.explore.por = m.por;
      po.workers = 4;
      EXPECT_EQ(mc::check_reachable_parallel(parsed.program,
                                             parsed.condition, po)
                    .reachable,
                expect_reachable)
          << t.name << " under " << m.name;
      EXPECT_EQ(mc::enumerate_outcomes_parallel(parsed.program, po).outcomes,
                full.outcomes)
          << t.name << " under " << m.name;
      EXPECT_EQ(mc::collect_final_executions_parallel(parsed.program, po),
                full_fps)
          << t.name << " under " << m.name;
    } else {
      mc::ExploreOptions o;
      o.por = m.por;
      EXPECT_EQ(
          mc::check_reachable(parsed.program, parsed.condition, o).reachable,
          expect_reachable)
          << t.name << " under " << m.name;
      EXPECT_EQ(mc::enumerate_outcomes(parsed.program, o).outcomes,
                full.outcomes)
          << t.name << " under " << m.name;
      EXPECT_EQ(mc::collect_final_executions(parsed.program, o), full_fps)
          << t.name << " under " << m.name;
    }
  }
}

TEST_P(ConformanceTest, AxiomaticEnumeratorAgrees) {
  const litmus::ImportedTest& t = test();
  const lang::ParsedLitmus parsed = lang::parse_litmus(t.source);
  const axiomatic::CompletenessResult r =
      axiomatic::check_completeness(parsed.program);
  EXPECT_TRUE(r.equivalent())
      << t.name << ": operational=" << r.operational_count
      << " axiomatic=" << r.axiomatic_count;
}

TEST_P(ConformanceTest, OptimalModesNeverSleepBlock) {
  const litmus::ImportedTest& t = test();
  const lang::ParsedLitmus parsed = lang::parse_litmus(t.source);
  for (const mc::PorMode por :
       {mc::PorMode::kOptimal, mc::PorMode::kOptimalParsimonious}) {
    mc::ExploreOptions o;
    o.por = por;
    EXPECT_EQ(mc::enumerate_outcomes(parsed.program, o).stats.sleep_blocked,
              0u)
        << t.name << " under " << mc::por_mode_name(por);
    mc::ParallelOptions po;
    po.explore.por = por;
    po.workers = 4;
    EXPECT_EQ(
        mc::enumerate_outcomes_parallel(parsed.program, po).stats.sleep_blocked,
        0u)
        << t.name << " under parallel " << mc::por_mode_name(por);
  }
}

std::string case_name(const ::testing::TestParamInfo<std::size_t>& info) {
  std::string n = corpus()[info.param].name;
  std::replace_if(
      n.begin(), n.end(),
      [](char c) { return std::isalnum(static_cast<unsigned char>(c)) == 0; },
      '_');
  return n;
}

INSTANTIATE_TEST_SUITE_P(Corpus, ConformanceTest,
                         ::testing::Range<std::size_t>(0, corpus().size()),
                         case_name);

}  // namespace
}  // namespace rc11
