// Tests for the command language: expression evaluation (Figure 1),
// command stepping (Figure 2), registers, labels/pc, folding, and
// Propositions 2.2 (value-agnostic reads).
#include <gtest/gtest.h>

#include "lang/builder.hpp"
#include "lang/command.hpp"
#include "lang/expr.hpp"

namespace rc11::lang {
namespace {

// --- Expressions ----------------------------------------------------------

TEST(Expr, EvalClosedArithmetic) {
  // (2 + 3) * 4 - 1 == 19
  const ExprPtr e = binary(
      BinOp::kSub,
      binary(BinOp::kMul, binary(BinOp::kAdd, constant(2), constant(3)),
             constant(4)),
      constant(1));
  EXPECT_EQ(eval_closed(e), 19);
}

TEST(Expr, EvalClosedBooleans) {
  EXPECT_EQ(eval_closed(binary(BinOp::kEq, constant(2), constant(2))), 1);
  EXPECT_EQ(eval_closed(binary(BinOp::kLt, constant(3), constant(2))), 0);
  EXPECT_EQ(eval_closed(unary(UnOp::kNot, constant(0))), 1);
  EXPECT_EQ(eval_closed(unary(UnOp::kMinus, constant(5))), -5);
  EXPECT_EQ(eval_closed(binary(BinOp::kAnd, constant(2), constant(3))), 1);
  EXPECT_EQ(eval_closed(binary(BinOp::kOr, constant(0), constant(0))), 0);
}

TEST(Expr, EvalClosedThrowsOnOpenExpression) {
  EXPECT_THROW((void)eval_closed(shared(0)), std::logic_error);
  EXPECT_THROW((void)eval_closed(reg(0)), std::logic_error);
}

TEST(Expr, NextReadIsLeftmostSharedOccurrence) {
  // x + (y + x): reads are x, then y, then x again (three reads).
  ExprPtr e = binary(BinOp::kAdd, shared(0),
                     binary(BinOp::kAdd, shared(1), shared(0)));
  auto r1 = next_read(e);
  ASSERT_TRUE(r1.has_value());
  EXPECT_EQ(r1->var, 0u);
  e = substitute_leftmost(e, 10);
  auto r2 = next_read(e);
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(r2->var, 1u);
  e = substitute_leftmost(e, 20);
  auto r3 = next_read(e);
  ASSERT_TRUE(r3.has_value());
  EXPECT_EQ(r3->var, 0u);  // second occurrence of x: a separate read
  e = substitute_leftmost(e, 30);
  EXPECT_FALSE(next_read(e).has_value());
  EXPECT_EQ(eval_closed(e), 60);
}

TEST(Expr, AcquireAnnotationSurvivesTraversal) {
  const ExprPtr e = binary(BinOp::kEq, shared_acq(3), constant(1));
  const auto r = next_read(e);
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(r->acquire);
  EXPECT_EQ(r->var, 3u);
}

TEST(Expr, ResolveRegistersSubstitutesValues) {
  const ExprPtr e = binary(BinOp::kAdd, reg(0), reg(1));
  const ExprPtr resolved = resolve_registers(e, {7, 8});
  EXPECT_EQ(eval_closed(resolved), 15);
  // Out-of-range registers default to 0.
  const ExprPtr r2 = resolve_registers(reg(5), {1});
  EXPECT_EQ(eval_closed(r2), 0);
}

TEST(Expr, SharedVarsDeduplicated) {
  const ExprPtr e = binary(BinOp::kAdd, shared(2),
                           binary(BinOp::kAdd, shared(1), shared(2)));
  EXPECT_EQ(shared_vars(e), (std::vector<VarId>{1, 2}));
  EXPECT_TRUE(has_shared(e));
  EXPECT_FALSE(has_reg(e));
}

TEST(Expr, FoldShortCircuitsAnd) {
  // 0 && x folds to 0 without leaving a pending read of x.
  const ExprPtr e =
      binary(BinOp::kAnd, constant(0), binary(BinOp::kEq, shared(0),
                                              constant(1)));
  const ExprPtr f = fold(e);
  EXPECT_FALSE(next_read(f).has_value());
  EXPECT_EQ(eval_closed(f), 0);
  // 1 && (x == 1) folds to (x == 1): the read remains.
  const ExprPtr g = fold(binary(BinOp::kAnd, constant(1),
                                binary(BinOp::kEq, shared(0), constant(1))));
  EXPECT_TRUE(next_read(g).has_value());
}

TEST(Expr, FoldShortCircuitsOr) {
  const ExprPtr e = binary(BinOp::kOr, constant(1), shared(0));
  EXPECT_FALSE(next_read(fold(e)).has_value());
  EXPECT_EQ(eval_closed(fold(e)), 1);
}

TEST(Expr, FoldConstantSubtrees) {
  const ExprPtr e = binary(BinOp::kAdd, constant(2), constant(3));
  EXPECT_EQ(fold(e)->kind, ExprKind::kConst);
  EXPECT_EQ(fold(e)->value, 5);
}

TEST(Expr, ToStringRendersStructure) {
  c11::VarTable vars;
  vars.intern("x");
  const ExprPtr e = binary(BinOp::kEq, shared_acq(0), constant(1));
  EXPECT_EQ(e->to_string(&vars), "(x^A == 1)");
}

// --- Commands: Figure 2 -----------------------------------------------------

RegFile no_regs;

TEST(Command, SkipHasNoStep) {
  EXPECT_FALSE(step(skip(), no_regs).has_value());
  EXPECT_TRUE(is_terminated(skip()));
}

TEST(Command, ClosedAssignEmitsWrite) {
  const ComPtr c = assign(0, constant(5));
  auto s = step(c, no_regs);
  ASSERT_TRUE(s.has_value());
  auto* wr = std::get_if<WriteStep>(&*s);
  ASSERT_NE(wr, nullptr);
  EXPECT_EQ(wr->var, 0u);
  EXPECT_EQ(wr->value, 5);
  EXPECT_FALSE(wr->release);
  EXPECT_TRUE(is_terminated(wr->next));
}

TEST(Command, ReleaseAssignMarksRelease) {
  auto s = step(assign_rel(0, constant(1)), no_regs);
  ASSERT_TRUE(s.has_value());
  auto* wr = std::get_if<WriteStep>(&*s);
  ASSERT_NE(wr, nullptr);
  EXPECT_TRUE(wr->release);
}

TEST(Command, OpenAssignEmitsReadThenWrite) {
  // x := y + 1 reads y, then writes x.
  const ComPtr c = assign(0, binary(BinOp::kAdd, shared(1), constant(1)));
  auto s = step(c, no_regs);
  ASSERT_TRUE(s.has_value());
  auto* rd = std::get_if<ReadStep>(&*s);
  ASSERT_NE(rd, nullptr);
  EXPECT_EQ(rd->var, 1u);
  // Proposition 2.2: the continuation accepts any value.
  for (Value v : {0, 7, -3}) {
    const ComPtr next = rd->next(v);
    auto s2 = step(next, no_regs);
    ASSERT_TRUE(s2.has_value());
    auto* wr = std::get_if<WriteStep>(&*s2);
    ASSERT_NE(wr, nullptr);
    EXPECT_EQ(wr->value, v + 1);
  }
}

TEST(Command, RegAssignSilentAtMemoryLevel) {
  const ComPtr c = reg_assign(2, constant(9));
  auto s = step(c, no_regs);
  ASSERT_TRUE(s.has_value());
  auto* rw = std::get_if<RegWriteStep>(&*s);
  ASSERT_NE(rw, nullptr);
  EXPECT_EQ(rw->reg, 2u);
  EXPECT_EQ(rw->value, 9);
}

TEST(Command, SwapEmitsUpdate) {
  auto s = step(swap(0, constant(2)), no_regs);
  ASSERT_TRUE(s.has_value());
  auto* up = std::get_if<UpdateStep>(&*s);
  ASSERT_NE(up, nullptr);
  EXPECT_EQ(up->var, 0u);
  EXPECT_EQ(up->new_value, 2);
  EXPECT_FALSE(up->captures);
}

TEST(Command, CapturingSwapRecordsRegister) {
  auto s = step(swap_into(3, 0, constant(2)), no_regs);
  ASSERT_TRUE(s.has_value());
  auto* up = std::get_if<UpdateStep>(&*s);
  ASSERT_NE(up, nullptr);
  EXPECT_TRUE(up->captures);
  EXPECT_EQ(up->capture_reg, 3u);
}

TEST(Command, SeqStepsLeftFirstThenEliminatesSkip) {
  const ComPtr c = seq(assign(0, constant(1)), assign(1, constant(2)));
  auto s = step(c, no_regs);
  auto* wr = std::get_if<WriteStep>(&*s);
  ASSERT_NE(wr, nullptr);
  EXPECT_EQ(wr->var, 0u);
  // Continuation: skip; second — one silent step, then the second write.
  auto s2 = step(wr->next, no_regs);
  ASSERT_TRUE(s2.has_value());
  auto* sil = std::get_if<SilentStep>(&*s2);
  ASSERT_NE(sil, nullptr);
  auto s3 = step(sil->next, no_regs);
  auto* wr2 = std::get_if<WriteStep>(&*s3);
  ASSERT_NE(wr2, nullptr);
  EXPECT_EQ(wr2->var, 1u);
}

TEST(Command, IfResolvesGuardThenBranches) {
  // if (x == 1) then y := 1 else y := 2.
  const ComPtr c = if_then_else(binary(BinOp::kEq, shared(0), constant(1)),
                                assign(1, constant(1)),
                                assign(1, constant(2)));
  auto s = step(c, no_regs);
  auto* rd = std::get_if<ReadStep>(&*s);
  ASSERT_NE(rd, nullptr);
  // Value 1: then-branch.
  {
    auto s2 = step(rd->next(1), no_regs);
    auto* sil = std::get_if<SilentStep>(&*s2);
    ASSERT_NE(sil, nullptr);
    auto s3 = step(sil->next, no_regs);
    auto* wr = std::get_if<WriteStep>(&*s3);
    ASSERT_NE(wr, nullptr);
    EXPECT_EQ(wr->value, 1);
  }
  // Value 0: else-branch.
  {
    auto s2 = step(rd->next(0), no_regs);
    auto* sil = std::get_if<SilentStep>(&*s2);
    ASSERT_NE(sil, nullptr);
    auto s3 = step(sil->next, no_regs);
    auto* wr = std::get_if<WriteStep>(&*s3);
    ASSERT_NE(wr, nullptr);
    EXPECT_EQ(wr->value, 2);
  }
}

TEST(Command, WhileUnfoldsPreservingGuard) {
  // while (x == 0) do y := 1 — the guard must be re-read every iteration.
  const ExprPtr guard = binary(BinOp::kEq, shared(0), constant(0));
  const ComPtr c = while_do(guard, assign(1, constant(1)));
  auto s = step(c, no_regs);
  auto* sil = std::get_if<SilentStep>(&*s);
  ASSERT_NE(sil, nullptr);
  // Unfolded: if (x == 0) then (body; while ...) else skip.
  auto s2 = step(sil->next, no_regs);
  auto* rd = std::get_if<ReadStep>(&*s2);
  ASSERT_NE(rd, nullptr);
  EXPECT_EQ(rd->var, 0u);
  // Guard true: body then the loop again with the ORIGINAL guard.
  ComPtr cont = rd->next(0);
  auto s3 = step(cont, no_regs);  // silent: if -> then-branch
  auto* sil3 = std::get_if<SilentStep>(&*s3);
  ASSERT_NE(sil3, nullptr);
  auto s4 = step(sil3->next, no_regs);  // body write
  auto* wr = std::get_if<WriteStep>(&*s4);
  ASSERT_NE(wr, nullptr);
  // After the body, the loop re-reads x (guard not pre-substituted).
  ComPtr after = wr->next;
  // skip; while... -> silent -> while -> silent unfold -> read.
  for (int i = 0; i < 3; ++i) {
    auto sn = step(after, no_regs);
    ASSERT_TRUE(sn.has_value());
    if (auto* sil_n = std::get_if<SilentStep>(&*sn)) {
      after = sil_n->next;
      continue;
    }
    auto* rd2 = std::get_if<ReadStep>(&*sn);
    ASSERT_NE(rd2, nullptr);
    EXPECT_EQ(rd2->var, 0u);
    return;
  }
  FAIL() << "loop did not re-read its guard";
}

TEST(Command, WhileGuardFalseTerminates) {
  const ComPtr c = while_do(binary(BinOp::kEq, shared(0), constant(0)),
                            skip());
  auto s = step(c, no_regs);                                 // unfold
  auto s2 = step(std::get<SilentStep>(*s).next, no_regs);    // guard read
  auto* rd = std::get_if<ReadStep>(&*s2);
  ASSERT_NE(rd, nullptr);
  auto s3 = step(rd->next(7), no_regs);  // guard false -> silent -> skip
  auto* sil = std::get_if<SilentStep>(&*s3);
  ASSERT_NE(sil, nullptr);
  EXPECT_TRUE(is_terminated(sil->next));
}

// --- Labels and pc -------------------------------------------------------------

TEST(Labels, LeadingLabelThroughSeq) {
  const ComPtr c = seq(labeled(2, assign(0, constant(1))),
                       labeled(3, assign(1, constant(1))));
  EXPECT_EQ(leading_label(c), 2);
  EXPECT_FALSE(is_terminated(c));
  EXPECT_TRUE(is_terminated(labeled(5, skip())));
  EXPECT_EQ(leading_label(skip(), 0), 0);
}

TEST(Labels, PcAdvancesAfterStatementCompletes) {
  const ComPtr c = seq(labeled(2, assign(0, constant(1))),
                       labeled(3, assign(1, constant(1))));
  auto s = step(c, no_regs);
  auto* wr = std::get_if<WriteStep>(&*s);
  ASSERT_NE(wr, nullptr);
  // After line 2's write, the pc is 3 (skip; labeled(3,...)).
  EXPECT_EQ(leading_label(wr->next), 3);
}

TEST(Labels, StickyThroughMultiStepStatement) {
  // 4: x := y + z takes two reads; the label must persist across them.
  const ComPtr c =
      labeled(4, assign(0, binary(BinOp::kAdd, shared(1), shared(2))));
  auto s = step(c, no_regs);
  auto* rd = std::get_if<ReadStep>(&*s);
  ASSERT_NE(rd, nullptr);
  const ComPtr mid = rd->next(1);
  EXPECT_EQ(leading_label(mid), 4);
  auto s2 = step(mid, no_regs);
  auto* rd2 = std::get_if<ReadStep>(&*s2);
  ASSERT_NE(rd2, nullptr);
  EXPECT_EQ(leading_label(rd2->next(2)), 4);
}

TEST(Labels, StickyThroughWhileSpin) {
  // 4: while (x == 0) skip — pc stays 4 across unfold, guard reads and
  // re-iterations.
  const ComPtr c =
      labeled(4, while_do(binary(BinOp::kEq, shared(0), constant(0)),
                          skip()));
  ComPtr cur = c;
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(leading_label(cur), 4) << "iteration " << i;
    auto s = step(cur, no_regs);
    ASSERT_TRUE(s.has_value());
    if (auto* sil = std::get_if<SilentStep>(&*s)) {
      cur = sil->next;
    } else if (auto* rd = std::get_if<ReadStep>(&*s)) {
      cur = rd->next(0);  // keep spinning
    }
  }
  EXPECT_EQ(leading_label(cur), 4);
}

TEST(Labels, LabelDropsWhenGuardFails) {
  const ComPtr c =
      seq(labeled(4, while_do(binary(BinOp::kEq, shared(0), constant(0)),
                              skip())),
          labeled(5, skip()));
  // unfold -> read guard false -> if-resolution -> pc 5.
  auto s = step(c, no_regs);
  ComPtr cur = std::get<SilentStep>(*s).next;
  auto s2 = step(cur, no_regs);
  auto* rd = std::get_if<ReadStep>(&*s2);
  ASSERT_NE(rd, nullptr);
  cur = rd->next(9);  // guard false
  auto s3 = step(cur, no_regs);
  cur = std::get<SilentStep>(*s3).next;
  EXPECT_EQ(leading_label(cur), 5);
}

// --- peek_step / step lock-step --------------------------------------------
//
// peek_step re-derives step()'s classification without building
// continuations; the two implementations must agree on every reachable
// continuation. Walk the full (bounded) continuation trees of programs
// exercising labels, Seq spines, short-circuit guards, registers, NA/
// release/acquire access modes and capturing swaps, branching reads over
// several values.

namespace {

ComKind stepping_kind(const ComPtr& c) {
  switch (c->kind) {
    case ComKind::kLabel:
      return stepping_kind(c->c1);
    case ComKind::kSeq:
      if (is_terminated(c->c1)) return ComKind::kSeq;
      return stepping_kind(c->c1);
    default:
      return c->kind;
  }
}

void write_reg(RegFile& regs, RegId r, Value v) {
  if (r >= regs.size()) regs.resize(r + 1, 0);
  regs[r] = v;
}

void expect_peek_matches(const ComPtr& c, RegFile regs, int depth) {
  if (depth == 0) return;
  const StepPeek pk = peek_step(c, regs);
  auto s = step(c, regs);
  if (!s) {
    EXPECT_EQ(pk.kind, PeekKind::kNone) << c->to_string();
    return;
  }
  if (auto* sil = std::get_if<SilentStep>(&*s)) {
    ASSERT_EQ(pk.kind, PeekKind::kSilent) << c->to_string();
    EXPECT_EQ(pk.loop_unfold, stepping_kind(c) == ComKind::kWhile)
        << c->to_string();
    expect_peek_matches(sil->next, std::move(regs), depth - 1);
  } else if (auto* rw = std::get_if<RegWriteStep>(&*s)) {
    ASSERT_EQ(pk.kind, PeekKind::kRegWrite) << c->to_string();
    write_reg(regs, rw->reg, rw->value);
    expect_peek_matches(rw->next, std::move(regs), depth - 1);
  } else if (auto* wr = std::get_if<WriteStep>(&*s)) {
    ASSERT_EQ(pk.kind, PeekKind::kWrite) << c->to_string();
    EXPECT_EQ(pk.var, wr->var);
    EXPECT_EQ(pk.value, wr->value);
    EXPECT_EQ(pk.release, wr->release);
    EXPECT_EQ(pk.nonatomic, wr->nonatomic);
    expect_peek_matches(wr->next, std::move(regs), depth - 1);
  } else if (auto* rd = std::get_if<ReadStep>(&*s)) {
    ASSERT_EQ(pk.kind, PeekKind::kRead) << c->to_string();
    EXPECT_EQ(pk.var, rd->var);
    EXPECT_EQ(pk.acquire, rd->acquire);
    EXPECT_EQ(pk.nonatomic, rd->nonatomic);
    for (Value v : {Value{0}, Value{1}}) {
      expect_peek_matches(rd->next(v), regs, depth - 1);
    }
  } else {
    auto* up = std::get_if<UpdateStep>(&*s);
    ASSERT_NE(up, nullptr);
    ASSERT_EQ(pk.kind, PeekKind::kUpdate) << c->to_string();
    EXPECT_EQ(pk.var, up->var);
    EXPECT_EQ(pk.value, up->new_value);
    if (up->captures) write_reg(regs, up->capture_reg, 3);
    expect_peek_matches(up->next, std::move(regs), depth - 1);
  }
}

}  // namespace

TEST(PeekStep, LockStepWithStepOnSpinLoopProgram) {
  // Peterson-style: labels, a while with a short-circuit && guard mixing an
  // acquiring shared read with a register compare, and a capturing swap.
  const ComPtr spin = while_do(
      binary(BinOp::kAnd, binary(BinOp::kEq, shared_acq(0), constant(1)),
             binary(BinOp::kEq, shared(1), reg(0))),
      labeled(4, reg_assign(1, binary(BinOp::kAdd, reg(1), constant(1)))));
  const ComPtr prog = seq(
      {labeled(1, assign(0, constant(1))),
       labeled(2, assign_rel(1, binary(BinOp::kAdd, shared(0), constant(1)))),
       labeled(3, spin),
       labeled(5, swap_into(2, 0, binary(BinOp::kAdd, reg(1), shared(1))))});
  expect_peek_matches(prog, RegFile{0, 0, 0}, 12);
}

TEST(PeekStep, LockStepWithStepOnNonatomicAndFoldQuirks) {
  // fold() passes `nonzero && E` through as E itself (not coerced to a
  // boolean), so `x := (2 && 7)` writes 7; the peek must reproduce that.
  const ComPtr prog = seq(
      {assign(0, binary(BinOp::kAnd, constant(2), constant(7))),
       assign_na(1, binary(BinOp::kOr, shared_na(2), constant(0))),
       if_then_else(binary(BinOp::kOr, reg(0), shared(3)),
                    swap(4, unary(UnOp::kMinus, constant(2))), skip()),
       assign(5, binary(BinOp::kOr, reg(1), constant(5)))});
  expect_peek_matches(prog, RegFile{0, 2}, 12);
}

// --- Builder sugar ---------------------------------------------------------------

TEST(Builder, HandlesAndOperators) {
  ProgramBuilder b;
  auto x = b.var("x", 0);
  auto r0 = b.reg("r0");
  b.thread({assign(x, 1), reg_assign(r0, x.acq())});
  const Program p = std::move(b).build();
  EXPECT_EQ(p.thread_count(), 1u);
  EXPECT_EQ(p.vars().name(x.id), "x");
  EXPECT_EQ(p.reg_name(r0.id), "r0");
  ASSERT_EQ(p.initial_values().size(), 1u);
  EXPECT_EQ(p.initial_values()[0].second, 0);
}

TEST(Builder, ExpressionOperatorsBuildTrees) {
  const ExprPtr e = (constant(1) + constant(2)) == constant(3);
  EXPECT_EQ(eval_closed(e), 1);
  const ExprPtr f = !(constant(1) != constant(1));
  EXPECT_EQ(eval_closed(f), 1);
  EXPECT_EQ(eval_closed(constant(5) * constant(3) - constant(5)), 10);
  EXPECT_EQ(eval_closed(constant(1) <= constant(0)), 0);
  EXPECT_EQ(eval_closed(constant(1) >= constant(0)), 1);
  EXPECT_EQ(eval_closed(constant(1) > constant(0)), 1);
  EXPECT_EQ(eval_closed(constant(1) < constant(0)), 0);
  EXPECT_EQ(eval_closed(constant(1) && constant(0)), 0);
  EXPECT_EQ(eval_closed(constant(1) || constant(0)), 1);
}

}  // namespace
}  // namespace rc11::lang
