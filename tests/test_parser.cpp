// Tests for the litmus text-format parser.
#include <gtest/gtest.h>

#include "lang/parser.hpp"

namespace rc11::lang {
namespace {

TEST(Parser, ParsesMinimalTest) {
  const auto p = parse_litmus(R"(litmus Mini
var x = 0
thread 1 { x := 1; }
)");
  EXPECT_EQ(p.name, "Mini");
  EXPECT_EQ(p.program.thread_count(), 1u);
  EXPECT_EQ(p.mode, CondMode::kNone);
  ASSERT_EQ(p.program.initial_values().size(), 1u);
  EXPECT_EQ(p.program.initial_values()[0].second, 0);
}

TEST(Parser, DistinguishesVariablesFromRegisters) {
  const auto p = parse_litmus(R"(litmus Regs
var x = 0
thread 1 { r0 := x; x := r0 + 1; }
)");
  EXPECT_TRUE(p.program.vars().contains("x"));
  EXPECT_FALSE(p.program.vars().contains("r0"));
  EXPECT_TRUE(p.program.find_reg("r0").has_value());
}

TEST(Parser, ReleaseAndAcquireAnnotations) {
  const auto p = parse_litmus(R"(litmus Ann
var f = 0
thread 1 { f :=R 1; }
thread 2 { r0 := f@A; }
exists (2:r0 == 1)
)");
  EXPECT_EQ(p.mode, CondMode::kExists);
  // Thread 1 body is a releasing assignment.
  const ComPtr c1 = p.program.thread(1);
  ASSERT_EQ(c1->kind, ComKind::kAssign);
  EXPECT_TRUE(c1->release);
  // Thread 2's RHS is an acquiring read.
  const ComPtr c2 = p.program.thread(2);
  ASSERT_EQ(c2->kind, ComKind::kRegAssign);
  EXPECT_EQ(c2->expr->kind, ExprKind::kVar);
  EXPECT_TRUE(c2->expr->acquire);
}

TEST(Parser, SwapForms) {
  const auto p = parse_litmus(R"(litmus Swaps
var t = 1
thread 1 { t.swap(2); }
thread 2 { r0 := t.swap(1); }
)");
  EXPECT_EQ(p.program.thread(1)->kind, ComKind::kSwap);
  EXPECT_FALSE(p.program.thread(1)->captures);
  EXPECT_EQ(p.program.thread(2)->kind, ComKind::kSwap);
  EXPECT_TRUE(p.program.thread(2)->captures);
}

TEST(Parser, ControlFlowAndLabels) {
  const auto p = parse_litmus(R"(litmus Ctrl
var x = 0
var y = 0
thread 1 {
  2: x := 1;
  4: while (y@A == 0) { skip; }
  5: if (x == 1) { y := 2; } else { y := 3; }
}
)");
  const ComPtr c = p.program.thread(1);
  EXPECT_EQ(leading_label(c), 2);
}

TEST(Parser, ConditionForms) {
  const auto p = parse_litmus(R"(litmus Conds
var x = 0
thread 1 { r0 := x; }
exists (1:r0 == 0 && (x != 1 || !(1:r0 >= 2)))
)");
  ASSERT_NE(p.condition, nullptr);
  EXPECT_EQ(p.condition->kind, CondKind::kAnd);
}

TEST(Parser, ForbiddenMode) {
  const auto p = parse_litmus(R"(litmus F
var x = 0
thread 1 { r0 := x; }
forbidden (1:r0 == 1)
)");
  EXPECT_EQ(p.mode, CondMode::kForbidden);
}

TEST(Parser, NegativeConditionValues) {
  const auto p = parse_litmus(R"(litmus Neg
var x = 0
thread 1 { r0 := x; }
exists (1:r0 == -1)
)");
  EXPECT_EQ(p.condition->value, -1);
}

TEST(Parser, CommentsAreSkipped) {
  const auto p = parse_litmus(R"(litmus C
# hash comment
var x = 0   // line comment
thread 1 { x := 1; }  # trailing
)");
  EXPECT_EQ(p.program.thread_count(), 1u);
}

TEST(Parser, ErrorsCarryLocation) {
  try {
    (void)parse_litmus("litmus X\nvar x = 0\nthread 1 { x ::= 1; }");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(Parser, RejectsNonConsecutiveThreads) {
  EXPECT_THROW((void)parse_litmus(R"(litmus T
var x = 0
thread 2 { x := 1; }
)"),
               ParseError);
}

TEST(Parser, RejectsReleaseOnRegister) {
  EXPECT_THROW((void)parse_litmus(R"(litmus R
var x = 0
thread 1 { r0 :=R x; }
)"),
               ParseError);
}

TEST(Parser, RejectsAcquireOnRegister) {
  EXPECT_THROW((void)parse_litmus(R"(litmus A
var x = 0
thread 1 { r0 := x; r1 := r0@A; }
)"),
               ParseError);
}

TEST(Parser, RejectsSwapOnRegister) {
  EXPECT_THROW((void)parse_litmus(R"(litmus S
var x = 0
thread 1 { r0.swap(1); }
)"),
               ParseError);
}

TEST(Parser, RejectsUnknownConditionNames) {
  EXPECT_THROW((void)parse_litmus(R"(litmus U
var x = 0
thread 1 { x := 1; }
exists (y == 0)
)"),
               ParseError);
  EXPECT_THROW((void)parse_litmus(R"(litmus U2
var x = 0
thread 1 { x := 1; }
exists (1:r9 == 0)
)"),
               ParseError);
}

TEST(Parser, OperatorPrecedence) {
  // 1 + 2 * 3 == 7 must parse as (1 + (2*3)) == 7.
  const auto p = parse_litmus(R"(litmus P
var x = 0
thread 1 { r0 := 1 + 2 * 3; }
)");
  const ComPtr c = p.program.thread(1);
  ASSERT_EQ(c->kind, ComKind::kRegAssign);
  EXPECT_EQ(eval_closed(c->expr), 7);
}

TEST(Parser, RoundTripsProgramToString) {
  const auto p = parse_litmus(R"(litmus RT
var x = 0
thread 1 { x := 1; r0 := x; }
)");
  const std::string s = p.program.to_string();
  EXPECT_NE(s.find("var x = 0"), std::string::npos);
  EXPECT_NE(s.find("thread 1"), std::string::npos);
}

}  // namespace
}  // namespace rc11::lang
