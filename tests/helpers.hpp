// Shared fixtures: executions from the paper's worked examples.
#pragma once

#include "c11/execution.hpp"

namespace rc11::testing {

/// Handles to the events of the Example 3.2 execution.
struct Example32 {
  c11::Execution ex;
  c11::VarId x = 0, y = 1, z = 2;
  // Event tags.
  c11::EventId init_x, init_y, init_z;
  c11::EventId upd1_x;   ///< updRA_1(x, 2, 4)
  c11::EventId wr2_x;    ///< wrR_2(x, 2)
  c11::EventId wr2_y;    ///< wr_2(y, 1)
  c11::EventId rd3_x;    ///< rdA_3(x, 2)
  c11::EventId wr3_z;    ///< wr_3(z, 3)
  c11::EventId upd4_y;   ///< updRA_4(y, 0, 5)
  c11::EventId rd4_z;    ///< rd_4(z, 3)
};

/// Builds the C11 state of Example 3.2 (four threads, variables x, y, z):
///
///   init:     wr0(x,0)  wr0(y,0)  wr0(z,0)
///   thread 1: updRA(x,2,4)                (reads wrR_2(x,2))
///   thread 2: wrR(x,2) ; wr(y,1)
///   thread 3: rdA(x,2) ; wr(z,3)          (reads wrR_2(x,2))
///   thread 4: updRA(y,0,5) ; rd(z,3)      (reads wr0(y,0), wr3(z,3))
///
///   mo|x: wr0(x,0) < wrR2(x,2) < updRA1(x,2,4)
///   mo|y: wr0(y,0) < updRA4(y,0,5) < wr2(y,1)
///   mo|z: wr0(z,0) < wr3(z,3)
[[nodiscard]] Example32 make_example_32();

}  // namespace rc11::testing
