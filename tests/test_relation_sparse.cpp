// Dense-vs-sparse representation equivalence for the hybrid Bitset /
// Relation rows (util/bitset.hpp). The chunked sparse form must be
// *observationally identical* to the dense form: same membership, pairs,
// hashes, closures, restrictions and compositions for any op sequence.
// Two layers:
//
//   * a seeded randomized differential — the same mutation sequence is
//     replayed against a dense-pinned and a sparse-pinned Relation and
//     every queryable surface is compared;
//   * an end-to-end cross-check — litmus-catalogue programs are explored
//     with every row forced sparse, and the final-execution fingerprint
//     sets, outcome sets and verdicts must match the default (hybrid)
//     representation run.
#include <gtest/gtest.h>

#include <cstddef>
#include <random>
#include <set>
#include <vector>

#include "lang/parser.hpp"
#include "litmus/catalog.hpp"
#include "mc/checker.hpp"
#include "util/relation.hpp"

namespace rc11 {
namespace {

/// Pins the global representation threshold for a scope.
class ThresholdGuard {
 public:
  explicit ThresholdGuard(std::size_t words)
      : saved_(util::Bitset::sparse_threshold_words()) {
    util::Bitset::set_sparse_threshold_words(words);
  }
  ~ThresholdGuard() { util::Bitset::set_sparse_threshold_words(saved_); }
  ThresholdGuard(const ThresholdGuard&) = delete;
  ThresholdGuard& operator=(const ThresholdGuard&) = delete;

 private:
  std::size_t saved_;
};

constexpr std::size_t kForceDense = ~std::size_t{0} >> 1;
constexpr std::size_t kForceSparse = 0;

/// One randomized mutation applied identically to both relations.
void mutate(util::Relation& r, std::mt19937& rng) {
  const std::size_t n = r.size();
  switch (rng() % 8) {
    case 0:
    case 1:
    case 2: {  // add dominates: relations in the engine mostly grow
      if (n == 0) break;
      r.add(rng() % n, rng() % n);
      break;
    }
    case 3: {
      if (n == 0) break;
      r.remove(rng() % n, rng() % n);
      break;
    }
    case 4: {  // grow (the append-one-event pattern)
      r.resize(n + 1 + rng() % 3);
      break;
    }
    case 5: {  // occasional shrink exercises the keep-storage path
      if (n > 4) r.resize(n - 1 - rng() % 3);
      break;
    }
    case 6: {  // batch column write (the hb/eco push_event kernel)
      if (n == 0) break;
      util::Bitset as(n);
      for (std::size_t k = 0; k < n / 3 + 1; ++k) as.set(rng() % n);
      r.add_to_column(rng() % n, as);
      break;
    }
    case 7: {  // batch row write
      if (n == 0) break;
      util::Bitset bs(n);
      for (std::size_t k = 0; k < n / 3 + 1; ++k) bs.set(rng() % n);
      r.add_to_row(rng() % n, bs);
      break;
    }
  }
}

/// Everything observable about r, computed under the *current* threshold
/// (closures and restrictions build fresh rows, so running this inside a
/// ThresholdGuard exercises the mixed dense/sparse kernel paths too).
struct Observation {
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  std::size_t pair_count = 0;
  std::size_t hash = 0;
  bool acyclic = false;
  std::vector<std::pair<std::size_t, std::size_t>> closure_pairs;
  std::vector<std::pair<std::size_t, std::size_t>> restricted_pairs;
  std::vector<std::pair<std::size_t, std::size_t>> inv_compose_pairs;
  std::vector<std::size_t> reach;
};

Observation observe(const util::Relation& r) {
  Observation o;
  o.pairs = r.pairs();
  o.pair_count = r.pair_count();
  o.hash = r.hash();
  o.acyclic = r.is_acyclic();
  o.closure_pairs = r.transitive_closure().pairs();
  const std::size_t n = r.size();
  util::Bitset evens(n);
  for (std::size_t i = 0; i < n; i += 2) evens.set(i);
  o.restricted_pairs = r.restrict_to(evens).pairs();
  o.inv_compose_pairs = r.inverse_compose(r).pairs();
  if (n > 0) {
    r.reachable_from(0).for_each(
        [&](std::size_t v) { o.reach.push_back(v); });
  }
  return o;
}

bool operator==(const Observation& a, const Observation& b) {
  return a.pairs == b.pairs && a.pair_count == b.pair_count &&
         a.hash == b.hash && a.acyclic == b.acyclic &&
         a.closure_pairs == b.closure_pairs &&
         a.restricted_pairs == b.restricted_pairs &&
         a.inv_compose_pairs == b.inv_compose_pairs && a.reach == b.reach;
}

TEST(RelationSparse, RandomizedOpSequencesMatchDense) {
  constexpr unsigned kSeeds = 20;
  constexpr std::size_t kOps = 120;
  for (unsigned seed = 1; seed <= kSeeds; ++seed) {
    // Two rng copies: both sides must see identical random draws.
    std::mt19937 rng_dense(seed);
    std::mt19937 rng_sparse(seed);

    util::Relation dense;
    util::Relation sparse;
    {
      const ThresholdGuard g(kForceDense);
      dense.resize(8);
      if (seed % 2 == 0) dense.enable_inverse();
    }
    {
      const ThresholdGuard g(kForceSparse);
      sparse.resize(8);
      if (seed % 2 == 0) sparse.enable_inverse();
    }

    for (std::size_t op = 0; op < kOps; ++op) {
      {
        const ThresholdGuard g(kForceDense);
        mutate(dense, rng_dense);
      }
      {
        const ThresholdGuard g(kForceSparse);
        mutate(sparse, rng_sparse);
      }
      ASSERT_EQ(dense.size(), sparse.size()) << "seed " << seed;
      // Mixed-representation equality must hold directly.
      ASSERT_TRUE(dense == sparse)
          << "seed " << seed << " op " << op << "\ndense:  "
          << dense.to_string() << "\nsparse: " << sparse.to_string();
    }

    Observation od, os;
    {
      const ThresholdGuard g(kForceDense);
      od = observe(dense);
    }
    {
      const ThresholdGuard g(kForceSparse);
      os = observe(sparse);
    }
    EXPECT_TRUE(od == os) << "divergent observation at seed " << seed;
    if (seed % 2 == 0) {
      for (std::size_t b = 0; b < dense.size(); ++b) {
        ASSERT_TRUE(dense.column_view(b) == sparse.column_view(b))
            << "seed " << seed << " column " << b;
      }
    }
  }
}

TEST(RelationSparse, SparseRowsSurviveShrinkRegrow) {
  // A sparse set stays sparse on shrink; membership must still track.
  const ThresholdGuard g(kForceSparse);
  util::Relation r(200);
  for (std::size_t i = 0; i + 7 < 200; i += 7) r.add(i, i + 7);
  const auto before = r.pairs();
  r.resize(100);
  r.resize(200);
  for (const auto& [a, b] : r.pairs()) {
    EXPECT_LT(b, std::size_t{100});  // pairs with dropped endpoints gone
  }
  for (const auto& [a, b] : before) {
    EXPECT_EQ(r.contains(a, b), a < 100 && b < 100);
  }
}

// --- End-to-end: the litmus catalogue with every row forced sparse ------------

TEST(RelationSparse, LitmusCatalogueAgreesUnderForcedSparse) {
  for (const litmus::Test& t : litmus::catalog()) {
    const lang::ParsedLitmus parsed = lang::parse_litmus(t.source);

    mc::ExploreOptions dpor;
    dpor.por = mc::PorMode::kSourceSetsSleep;
    mc::ExploreOptions optimal;
    optimal.por = mc::PorMode::kOptimalParsimonious;

    std::set<util::Fingerprint> fps_default;
    std::set<mc::Outcome> outs_default;
    bool verdict_default = false;
    {
      fps_default = mc::collect_final_executions(parsed.program, dpor);
      outs_default =
          mc::enumerate_outcomes(parsed.program, optimal).outcomes;
      verdict_default =
          mc::check_reachable(parsed.program, parsed.condition, dpor)
              .reachable;
    }

    const ThresholdGuard g(kForceSparse);
    EXPECT_EQ(mc::collect_final_executions(parsed.program, dpor),
              fps_default)
        << t.name << ": final fingerprints diverge under forced sparse";
    EXPECT_EQ(mc::enumerate_outcomes(parsed.program, optimal).outcomes,
              outs_default)
        << t.name << ": outcomes diverge under forced sparse";
    EXPECT_EQ(
        mc::check_reachable(parsed.program, parsed.condition, dpor).reachable,
        verdict_default)
        << t.name << ": verdict diverges under forced sparse";
  }
}

}  // namespace
}  // namespace rc11
