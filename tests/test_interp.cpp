// Tests for the interpreted semantics (Section 3.3): configurations,
// successor enumeration under ==>_RA, the pre-execution semantics ==>_PE
// (Section 4.1, Example 4.5), tau compression and loop bounding.
#include <gtest/gtest.h>

#include "c11/axioms.hpp"
#include "interp/config.hpp"
#include "interp/preexec.hpp"
#include "lang/builder.hpp"

namespace rc11::interp {
namespace {

using lang::assign;
using lang::constant;
using lang::ProgramBuilder;
using lang::reg_assign;
using lang::seq;

TEST(Config, InitialConfigMatchesProgram) {
  ProgramBuilder b;
  auto x = b.var("x", 3);
  b.thread({assign(x, 1)});
  b.thread({assign(x, 2)});
  const Program p = std::move(b).build();
  const Config c = initial_config(p);
  EXPECT_EQ(c.thread_count(), 2u);
  EXPECT_EQ(c.exec.size(), 1u);
  EXPECT_EQ(c.exec.event(0).wrval(), 3);
  EXPECT_FALSE(c.terminated());
}

TEST(Config, SuccessorsEnumerateThreadChoices) {
  ProgramBuilder b;
  auto x = b.var("x", 0);
  b.thread({assign(x, 1)});
  b.thread({assign(x, 2)});
  const Program p = std::move(b).build();
  const Config c = initial_config(p);
  // Each thread has one write with one insertion point (after init).
  const auto succs = successors(c);
  ASSERT_EQ(succs.size(), 2u);
  EXPECT_EQ(succs[0].thread, 1u);
  EXPECT_EQ(succs[1].thread, 2u);
  for (const auto& s : succs) {
    EXPECT_FALSE(s.silent);
    EXPECT_TRUE(c11::is_valid(s.next.exec));
  }
}

TEST(Config, ReadBranchesOverObservableWrites) {
  // x already has two mo-ordered writes; a fresh reader sees both options.
  ProgramBuilder b;
  auto x = b.var("x", 0);
  auto r0 = b.reg("r0");
  b.thread({assign(x, 1), reg_assign(r0, lang::ExprPtr(x))});
  const Program p = std::move(b).build();
  Config c = initial_config(p);
  // Execute the write first.
  auto succs = successors(c);
  ASSERT_EQ(succs.size(), 1u);
  c = succs[0].next;
  // skip; regassign -> silent first.
  succs = successors(c);
  ASSERT_EQ(succs.size(), 1u);
  ASSERT_TRUE(succs[0].silent);
  c = succs[0].next;
  // Thread 1 has encountered its own write, so only that is readable.
  succs = successors(c);
  ASSERT_EQ(succs.size(), 1u);
  EXPECT_EQ(succs[0].action.rdval(), 1);
}

TEST(Config, FreshReaderSeesAllWrites) {
  ProgramBuilder b;
  auto x = b.var("x", 0);
  auto r0 = b.reg("r0");
  b.thread({assign(x, 1)});
  b.thread({reg_assign(r0, lang::ExprPtr(x))});
  const Program p = std::move(b).build();
  Config c = initial_config(p);
  c = successors(c)[0].next;  // thread 1 writes
  // Thread 2 read: 2 options (init 0 and the new 1).
  const auto succs = successors(c);
  std::size_t reads = 0;
  for (const auto& s : succs) {
    if (!s.silent && s.thread == 2) ++reads;
  }
  EXPECT_EQ(reads, 2u);
}

TEST(Config, RegisterFileUpdatedByReads) {
  ProgramBuilder b;
  auto x = b.var("x", 7);
  auto r0 = b.reg("r0");
  b.thread({reg_assign(r0, lang::ExprPtr(x))});
  const Program p = std::move(b).build();
  Config c = initial_config(p);
  c = successors(c)[0].next;  // the read
  c = successors(c)[0].next;  // the register write (silent)
  EXPECT_TRUE(c.terminated());
  EXPECT_EQ(c.regs[0][r0.id], 7);
}

TEST(Config, CapturingSwapWritesRegister) {
  ProgramBuilder b;
  auto x = b.var("x", 5);
  auto r0 = b.reg("r0");
  b.thread({lang::swap_into(r0, x, 9)});
  const Program p = std::move(b).build();
  Config c = initial_config(p);
  const auto succs = successors(c);
  ASSERT_EQ(succs.size(), 1u);
  EXPECT_EQ(succs[0].next.regs[0][r0.id], 5);
  EXPECT_EQ(succs[0].next.exec.event(succs[0].event).wrval(), 9);
}

TEST(Config, PcTracksLabels) {
  ProgramBuilder b;
  auto x = b.var("x", 0);
  b.thread(seq(lang::labeled(2, assign(x, 1)),
               lang::labeled(3, assign(x, 2))));
  const Program p = std::move(b).build();
  Config c = initial_config(p);
  EXPECT_EQ(c.pc(1), 2);
  c = successors(c)[0].next;
  EXPECT_EQ(c.pc(1), 3);
}

TEST(Config, TauCompressionSkipsSilentSteps) {
  ProgramBuilder b;
  auto x = b.var("x", 0);
  b.thread({assign(x, 1), assign(x, 2)});
  const Program p = std::move(b).build();
  StepOptions opts;
  opts.tau_compress = true;
  Config c = initial_config(p);
  c = successors(c, opts)[0].next;
  // The skip-elimination silent step was compressed away: next step is
  // directly the second write.
  const auto succs = successors(c, opts);
  ASSERT_EQ(succs.size(), 1u);
  EXPECT_FALSE(succs[0].silent);
  EXPECT_EQ(succs[0].action.wrval(), 2);
}

TEST(Config, LoopBoundCutsUnfoldings) {
  ProgramBuilder b;
  auto x = b.var("x", 0);
  b.thread({lang::while_do(lang::ExprPtr(x) == constant(0), lang::skip())});
  const Program p = std::move(b).build();
  StepOptions opts;
  opts.loop_bound = 0;
  const Config c = initial_config(p);
  EXPECT_TRUE(successors(c, opts).empty());
  opts.loop_bound = 1;
  const auto succs = successors(c, opts);
  ASSERT_EQ(succs.size(), 1u);
  EXPECT_TRUE(succs[0].loop_unfold);
  EXPECT_EQ(succs[0].next.unfoldings[0], 1);
}

TEST(Config, CanonicalKeyMergesIndependentInterleavings) {
  ProgramBuilder b;
  auto x = b.var("x", 0);
  auto y = b.var("y", 0);
  b.thread({assign(x, 1)});
  b.thread({assign(y, 1)});
  const Program p = std::move(b).build();
  const Config c = initial_config(p);
  const auto s = successors(c);
  ASSERT_EQ(s.size(), 2u);
  // After thread 1 moves, only thread 2 can move (and vice versa).
  const auto s_ab = successors(s[0].next);
  const auto s_ba = successors(s[1].next);
  ASSERT_EQ(s_ab.size(), 1u);
  ASSERT_EQ(s_ba.size(), 1u);
  EXPECT_EQ(s_ab[0].next.canonical_key(), s_ba[0].next.canonical_key());
}

// --- eval_cond ---------------------------------------------------------------

TEST(EvalCond, RegisterAndVariableAtoms) {
  ProgramBuilder b;
  auto x = b.var("x", 0);
  auto r0 = b.reg("r0");
  b.thread({reg_assign(r0, lang::ExprPtr(x)), assign(x, 4)});
  const Program p = std::move(b).build();
  Config c = initial_config(p);
  while (!c.terminated()) c = successors(c)[0].next;
  EXPECT_TRUE(eval_cond(lang::cond_reg(1, r0.id, lang::BinOp::kEq, 0), c));
  EXPECT_TRUE(eval_cond(lang::cond_var(x.id, lang::BinOp::kEq, 4), c));
  EXPECT_TRUE(eval_cond(
      lang::cond_and(lang::cond_reg(1, r0.id, lang::BinOp::kEq, 0),
                     lang::cond_var(x.id, lang::BinOp::kNe, 5)),
      c));
  EXPECT_FALSE(eval_cond(
      lang::cond_not(lang::cond_var(x.id, lang::BinOp::kGe, 4)), c));
  EXPECT_TRUE(eval_cond(
      lang::cond_or(lang::cond_var(x.id, lang::BinOp::kEq, 9),
                    lang::cond_true()),
      c));
}

// --- Pre-execution semantics (Section 4.1) --------------------------------------

TEST(PreExec, ValueDomainCollectsConstants) {
  ProgramBuilder b;
  auto x = b.var("x", 3);
  b.thread({assign(x, 7)});
  const Program p = std::move(b).build();
  const auto dom = value_domain(p);
  // {0, 1, 3, 7}
  EXPECT_EQ(dom, (std::vector<Value>{0, 1, 3, 7}));
}

TEST(PreExec, ReadsBranchOverDomain) {
  ProgramBuilder b;
  auto x = b.var("x", 0);
  auto r0 = b.reg("r0");
  b.thread({reg_assign(r0, lang::ExprPtr(x))});
  const Program p = std::move(b).build();
  const Config c = initial_config(p);
  const auto succs = pe_successors(c, {0, 1, 5});
  ASSERT_EQ(succs.size(), 3u);
  for (const auto& s : succs) {
    EXPECT_TRUE(s.next.exec.rf().empty());  // no rf in pre-executions
    EXPECT_EQ(s.observed, c11::kNoEvent);
  }
  EXPECT_EQ(succs[2].action.rdval(), 5);
}

TEST(PreExec, Example45ReadBeforeWrite) {
  // thread 1: z := x; thread 2: x := 5. The PE semantics can read x = 5
  // *before* thread 2 writes (the justification comes later); the RA
  // semantics cannot.
  ProgramBuilder b;
  auto x = b.var("x", 0);
  auto z = b.var("z", 0);
  b.thread({assign(z, lang::ExprPtr(x))});
  b.thread({assign(x, 5)});
  const Program p = std::move(b).build();
  const Config c0 = initial_config(p);

  // PE: thread 1 may immediately read 5.
  bool pe_reads_5_first = false;
  for (const auto& s : pe_successors(c0, value_domain(p))) {
    if (s.thread == 1 && !s.silent && s.action.is_read() &&
        s.action.rdval() == 5) {
      pe_reads_5_first = true;
    }
  }
  EXPECT_TRUE(pe_reads_5_first);

  // RA: thread 1's first read can only return 0 (only the init write
  // exists).
  for (const auto& s : successors(c0)) {
    if (s.thread == 1 && !s.silent) {
      EXPECT_EQ(s.action.rdval(), 0);
    }
  }

  // But the same final state is reachable in RA by scheduling thread 2
  // first (the reordering of Example 4.5).
  Config c = c0;
  // thread 2 writes x := 5.
  for (const auto& s : successors(c)) {
    if (s.thread == 2) {
      c = s.next;
      break;
    }
  }
  // thread 1 now reads 5 and writes z := 5.
  bool read5 = false;
  for (const auto& s : successors(c)) {
    if (s.thread == 1 && !s.silent && s.action.rdval() == 5) {
      c = s.next;
      read5 = true;
      break;
    }
  }
  EXPECT_TRUE(read5);
  while (!c.terminated()) {
    bool advanced = false;
    for (const auto& s : successors(c)) {
      c = s.next;
      advanced = true;
      break;
    }
    ASSERT_TRUE(advanced);
  }
  EXPECT_EQ(c.exec.event(c.exec.last(z.id)).wrval(), 5);
  EXPECT_TRUE(c11::is_valid(c.exec));
}

TEST(PreExec, WidenDomainClosesArithmetic) {
  ProgramBuilder b;
  auto x = b.var("x", 0);
  b.thread({assign(x, lang::ExprPtr(x) + constant(1))});
  const Program p = std::move(b).build();
  const auto dom = widen_domain(p, value_domain(p), 1);
  // 0,1 plus sums: 0+0, 0+1, 1+1.
  EXPECT_NE(std::find(dom.begin(), dom.end(), 2), dom.end());
}

}  // namespace
}  // namespace rc11::interp
