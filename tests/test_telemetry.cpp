// Tests for the observability subsystem (src/obs): heartbeat cadence
// under an injected ManualClock, NDJSON sink schema, phase-profile
// accounting through WorkerScope/ScopedPhase, the Chrome trace-event
// exporter's structural validity, and the zero-overhead contract that
// keeps telemetry-off exploration untouched.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "lang/parser.hpp"
#include "litmus/catalog.hpp"
#include "mc/checker.hpp"
#include "obs/telemetry.hpp"
#include "util/clock.hpp"

namespace rc11::obs {
namespace {

// Sink that records everything it is handed.
struct CollectingSink final : TelemetrySink {
  std::vector<ProgressSnapshot> snapshots;
  std::vector<PhaseProfile> run_ends;
  void on_snapshot(const ProgressSnapshot& snap) override {
    snapshots.push_back(snap);
  }
  void on_run_end(const PhaseProfile& profile) override {
    run_ends.push_back(profile);
  }
};

// --- Heartbeat cadence ---------------------------------------------------------

TEST(Heartbeat, ManualClockDrivesExactCadence) {
  util::ManualClock clock(1'000'000);
  CollectingSink sink;
  Telemetry::Options opts;
  opts.sink = &sink;
  opts.heartbeat_ns = 1000;
  opts.clock = &clock;
  Telemetry tel(opts);

  // Before the first deadline: never due.
  EXPECT_FALSE(tel.heartbeat_due());
  clock.advance_ns(999);
  EXPECT_FALSE(tel.heartbeat_due());

  // At the deadline: due exactly once.
  clock.advance_ns(1);
  EXPECT_TRUE(tel.heartbeat_due());
  EXPECT_FALSE(tel.heartbeat_due());

  // A long stall collapses the missed intervals into one beat (the
  // deadline rearms at now + interval, not deadline + interval).
  clock.advance_ns(10'000);
  EXPECT_TRUE(tel.heartbeat_due());
  EXPECT_FALSE(tel.heartbeat_due());

  ProgressSnapshot snap;
  snap.states = 10;
  tel.emit(snap);
  tel.emit(snap);
  EXPECT_EQ(tel.heartbeats_emitted(), 2u);
  ASSERT_EQ(sink.snapshots.size(), 2u);
  EXPECT_EQ(sink.snapshots[0].seq, 0u);
  EXPECT_EQ(sink.snapshots[1].seq, 1u);
}

TEST(Heartbeat, DisabledWithoutSinkOrInterval) {
  util::ManualClock clock(0);
  {
    Telemetry::Options opts;  // no sink
    opts.heartbeat_ns = 1000;
    opts.clock = &clock;
    Telemetry tel(opts);
    clock.advance_ns(1'000'000);
    EXPECT_FALSE(tel.heartbeat_due());
  }
  {
    CollectingSink sink;
    Telemetry::Options opts;
    opts.sink = &sink;  // sink but no interval
    opts.clock = &clock;
    Telemetry tel(opts);
    clock.advance_ns(1'000'000);
    EXPECT_FALSE(tel.heartbeat_due());
  }
}

TEST(Heartbeat, EmitFillsWindowRatesFromInjectedClock) {
  util::ManualClock clock(0);
  CollectingSink sink;
  Telemetry::Options opts;
  opts.sink = &sink;
  opts.heartbeat_ns = 1'000'000;
  opts.clock = &clock;
  Telemetry tel(opts);

  clock.advance_ns(2'000'000);  // 2 ms window since t0
  ProgressSnapshot snap;
  snap.states = 42;
  snap.transitions = 84;
  tel.emit(snap);
  ASSERT_EQ(sink.snapshots.size(), 1u);
  EXPECT_EQ(sink.snapshots[0].elapsed_ns, 2'000'000u);
  EXPECT_DOUBLE_EQ(sink.snapshots[0].states_per_sec, 21'000.0);
  EXPECT_DOUBLE_EQ(sink.snapshots[0].transitions_per_sec, 42'000.0);

  // A counter moving backwards (a new exploration reusing the context)
  // resets the window rate to 0 instead of reporting garbage.
  clock.advance_ns(1'000'000);
  ProgressSnapshot fresh;
  fresh.states = 5;
  tel.emit(fresh);
  ASSERT_EQ(sink.snapshots.size(), 2u);
  EXPECT_DOUBLE_EQ(sink.snapshots[1].states_per_sec, 0.0);
}

// --- NDJSON sink schema --------------------------------------------------------

TEST(NdjsonSink, ProgressAndProfileSchema) {
  std::ostringstream os;
  NdjsonSink ndjson(os);
  util::ManualClock clock(0);
  Telemetry::Options opts;
  opts.sink = &ndjson;
  opts.heartbeat_ns = 1'000'000;
  opts.clock = &clock;
  Telemetry tel(opts);

  clock.advance_ns(2'000'000);
  ProgressSnapshot snap;
  snap.states = 42;
  snap.transitions = 84;
  snap.finals = 3;
  snap.max_depth = 9;
  snap.frontier = 4;
  snap.seen_bytes = 1024;
  snap.sleep_blocked = 1;
  snap.redundant = 2;
  snap.workers.push_back({/*processed=*/10, /*enqueued=*/11,
                          /*steals=*/7, /*merged=*/5});
  tel.emit(snap);
  tel.finish();

  std::istringstream lines(os.str());
  std::string progress, profile, extra;
  ASSERT_TRUE(std::getline(lines, progress));
  ASSERT_TRUE(std::getline(lines, profile));
  EXPECT_FALSE(std::getline(lines, extra)) << extra;

  for (const char* fragment :
       {R"("type":"progress")", R"("seq":0)", R"("elapsed_ms":2.000)",
        R"("states":42)", R"("transitions":84)", R"("finals":3)",
        R"("max_depth":9)", R"("frontier":4)", R"("seen_bytes":1024)",
        R"("sleep_blocked":1)", R"("redundant":2)",
        R"("states_per_sec":21000.0)",
        R"("workers":[{"processed":10,"enqueued":11,"steals":7,"merged":5}])"}) {
    EXPECT_NE(progress.find(fragment), std::string::npos)
        << fragment << " missing from: " << progress;
  }
  EXPECT_EQ(progress.front(), '{');
  EXPECT_EQ(progress.back(), '}');

  EXPECT_NE(profile.find(R"("type":"phase_profile")"), std::string::npos);
  // Every phase of the taxonomy appears, even with zero ticks.
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    const std::string key =
        std::string("\"") + phase_name(static_cast<Phase>(i)) + "\":{\"ns\":";
    EXPECT_NE(profile.find(key), std::string::npos)
        << key << " missing from: " << profile;
  }
}

// --- Phase profile accounting --------------------------------------------------

TEST(PhaseProfile, WorkerScopeMergesScopedPhases) {
  Telemetry tel;
  {
    WorkerScope scope(&tel, 0);
    // profile() only reflects *detached* scopes.
    {
      ScopedPhase apply(Phase::kApply);
      ScopedPhase nested(Phase::kPushEvent);
    }
    { ScopedPhase fp(Phase::kFingerprint); }
    EXPECT_TRUE(tel.profile().empty());
  }
  const PhaseProfile p = tel.profile();
  EXPECT_FALSE(p.empty());
  EXPECT_EQ(p[Phase::kApply].count, 1u);
  EXPECT_EQ(p[Phase::kPushEvent].count, 1u);
  EXPECT_EQ(p[Phase::kFingerprint].count, 1u);
  EXPECT_EQ(p[Phase::kUndo].count, 0u);

  // Exclusive (flat) accounting: shares sum to <= 1.
  double total_share = 0.0;
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    total_share += p.share(static_cast<Phase>(i));
  }
  EXPECT_LE(total_share, 1.0 + 1e-9);
}

TEST(PhaseProfile, ArithmeticAndToString) {
  PhaseProfile a;
  a.phases[static_cast<std::size_t>(Phase::kApply)] = {600, 3};
  a.phases[static_cast<std::size_t>(Phase::kUndo)] = {400, 2};
  PhaseProfile b = a;
  b += a;
  EXPECT_EQ(b[Phase::kApply].ns, 1200u);
  EXPECT_EQ(b[Phase::kApply].count, 6u);
  const PhaseProfile d = b - a;
  EXPECT_EQ(d[Phase::kApply].ns, 600u);
  EXPECT_EQ(d[Phase::kUndo].count, 2u);
  EXPECT_DOUBLE_EQ(a.share(Phase::kApply), 0.6);
  EXPECT_EQ(a.total_ns(), 1000u);
  const std::string s = a.to_string();
  // Sorted by descending time: apply before undo.
  EXPECT_LT(s.find("apply 60.0%"), s.find("undo 40.0%"));
}

// --- End-to-end through the explorer -------------------------------------------

TEST(Telemetry, ExplorerAttachesPhaseProfile) {
  const auto parsed =
      lang::parse_litmus(litmus::find_test("SB").source);
  for (mc::PorMode por :
       {mc::PorMode::kNone, mc::PorMode::kOptimal}) {
    Telemetry tel;
    mc::ExploreOptions opts;
    opts.por = por;
    opts.telemetry = &tel;
    const mc::ExploreResult r = mc::explore(parsed.program, opts, {});
    EXPECT_FALSE(r.phases.empty());
    EXPECT_GT(r.phases[Phase::kApply].count, 0u);
    EXPECT_GT(r.phases[Phase::kEnumerate].count, 0u);
    // The engine-attached profile is the run's slice of the shared
    // context (profile-base subtraction), so counts never exceed it.
    const PhaseProfile total = tel.profile();
    EXPECT_LE(r.phases[Phase::kApply].count, total[Phase::kApply].count);
  }
}

TEST(Telemetry, ZeroOverheadContractWhenOff) {
  // No telemetry: the result profile stays empty and no thread-local
  // track is bound (ScopedPhase outside any WorkerScope is a no-op).
  EXPECT_EQ(detail::tl_track, nullptr);
  { ScopedPhase untracked(Phase::kApply); }
  instant_event("untracked");
  EXPECT_EQ(detail::tl_track, nullptr);

  const auto parsed =
      lang::parse_litmus(litmus::find_test("SB").source);
  const mc::ExploreResult r = mc::explore(parsed.program, {}, {});
  EXPECT_TRUE(r.phases.empty());
  EXPECT_EQ(detail::tl_track, nullptr);
}

// --- Chrome trace exporter -----------------------------------------------------

// Pulls the integer value following `"key":` out of a JSON-ish line.
std::int64_t extract_int(const std::string& line, const std::string& key) {
  const auto pos = line.find("\"" + key + "\":");
  EXPECT_NE(pos, std::string::npos) << key << " in " << line;
  return std::strtoll(line.c_str() + pos + key.size() + 3, nullptr, 10);
}

double extract_double(const std::string& line, const std::string& key) {
  const auto pos = line.find("\"" + key + "\":");
  EXPECT_NE(pos, std::string::npos) << key << " in " << line;
  return std::strtod(line.c_str() + pos + key.size() + 3, nullptr);
}

TEST(ChromeTrace, StructurallyValidTimeline) {
  const auto parsed =
      lang::parse_litmus(litmus::find_test("IRIW_ra").source);
  Telemetry::Options topts;
  topts.trace_capacity = 1 << 12;
  Telemetry tel(topts);
  mc::ExploreOptions opts;
  opts.por = mc::PorMode::kOptimal;
  opts.telemetry = &tel;
  (void)mc::explore(parsed.program, opts, {});

  std::ostringstream os;
  tel.write_chrome_trace(os);
  const std::string trace = os.str();
  ASSERT_EQ(trace.front(), '[');

  // One event object per line between the brackets.
  std::istringstream lines(trace);
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line, "[");
  bool saw_metadata = false;
  double last_ts = 0.0;
  std::map<std::int64_t, int> depth;
  std::size_t events = 0;
  while (std::getline(lines, line) && line != "]") {
    if (line.back() == ',') line.pop_back();
    ++events;
    const auto ph_pos = line.find("\"ph\":\"");
    ASSERT_NE(ph_pos, std::string::npos) << line;
    const char ph = line[ph_pos + 6];
    if (ph == 'M') {
      saw_metadata = true;
      EXPECT_NE(line.find("thread_name"), std::string::npos);
      continue;
    }
    const std::int64_t tid = extract_int(line, "tid");
    const double ts = extract_double(line, "ts");
    EXPECT_GE(ts, last_ts) << "timestamps must be sorted: " << line;
    last_ts = ts;
    if (ph == 'B') {
      ++depth[tid];
    } else if (ph == 'E') {
      --depth[tid];
      EXPECT_GE(depth[tid], 0) << "unmatched E on tid " << tid;
    } else {
      EXPECT_EQ(ph, 'i') << line;
      EXPECT_NE(line.find("\"s\":\"t\""), std::string::npos) << line;
    }
  }
  EXPECT_GT(events, 0u);
  EXPECT_TRUE(saw_metadata);
  for (const auto& [tid, d] : depth) {
    EXPECT_EQ(d, 0) << "unbalanced spans on tid " << tid;
  }
}

TEST(ChromeTrace, RingBufferCapsEventCount) {
  // A tiny per-worker ring keeps only the newest spans; the trace still
  // closes every span it opens.
  const auto parsed =
      lang::parse_litmus(litmus::find_test("IRIW_ra").source);
  Telemetry::Options topts;
  topts.trace_capacity = 8;
  Telemetry tel(topts);
  mc::ExploreOptions opts;
  opts.telemetry = &tel;
  (void)mc::explore(parsed.program, opts, {});

  std::ostringstream os;
  tel.write_chrome_trace(os);
  const std::string trace = os.str();
  std::size_t begins = 0, ends = 0, pos = 0;
  while ((pos = trace.find("\"ph\":\"B\"", pos)) != std::string::npos) {
    ++begins;
    pos += 8;
  }
  pos = 0;
  while ((pos = trace.find("\"ph\":\"E\"", pos)) != std::string::npos) {
    ++ends;
    pos += 8;
  }
  EXPECT_EQ(begins, ends);
  EXPECT_LE(begins, 8u);
  EXPECT_GT(begins, 0u);
}

}  // namespace
}  // namespace rc11::obs
