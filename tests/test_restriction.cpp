// Tests for the Theorem-4.8 restriction operator: re-tagging, relation
// intersection, and the key property the completeness proof relies on —
// restricting a valid execution to an (sb u rf)-downward-closed prefix
// containing the initialising writes yields a valid execution.
#include <gtest/gtest.h>

#include "c11/axioms.hpp"
#include "c11/execution.hpp"
#include "helpers.hpp"
#include "lang/parser.hpp"
#include "litmus/catalog.hpp"
#include "mc/explorer.hpp"

namespace rc11::c11 {
namespace {

TEST(Restriction, FullRestrictionIsIdentityUpToTags) {
  const auto e = rc11::testing::make_example_32();
  util::Bitset all(e.ex.size());
  all.fill();
  const Execution r = e.ex.restrict(all);
  EXPECT_EQ(r.canonical_key(), e.ex.canonical_key());
}

TEST(Restriction, DropsEventsAndReindexes) {
  const auto e = rc11::testing::make_example_32();
  // Keep only the x events: init_x, wr2_x, upd1_x, rd3_x.
  util::Bitset keep(e.ex.size());
  keep.set(e.init_x);
  keep.set(e.wr2_x);
  keep.set(e.upd1_x);
  keep.set(e.rd3_x);
  const Execution r = e.ex.restrict(keep);
  EXPECT_EQ(r.size(), 4u);
  EXPECT_EQ(r.writes().count(), 3u);  // init, wrR, upd
  EXPECT_EQ(r.updates().count(), 1u);
  // mo chain survives: init < wrR < upd.
  EXPECT_EQ(r.mo().pair_count(), 3u);
  // rf edges among kept events survive.
  EXPECT_EQ(r.rf().pair_count(), 2u);
}

TEST(Restriction, PrefixClosureContainsSbRfPredecessors) {
  const auto e = rc11::testing::make_example_32();
  util::Bitset seed(e.ex.size());
  seed.set(e.rd3_x);
  const util::Bitset prefix = e.ex.sbrf_prefix(seed);
  // rd3_x reads wr2_x, which is sb-after wr2_y; inits always included.
  EXPECT_TRUE(prefix.test(e.rd3_x));
  EXPECT_TRUE(prefix.test(e.wr2_x));
  EXPECT_TRUE(prefix.test(e.wr2_y));
  EXPECT_TRUE(prefix.test(e.init_x));
  EXPECT_TRUE(prefix.test(e.init_y));
  EXPECT_TRUE(prefix.test(e.init_z));
  // Unrelated thread-4 events are not dragged in.
  EXPECT_FALSE(prefix.test(e.upd4_y));
  EXPECT_FALSE(prefix.test(e.rd4_z));
}

TEST(Restriction, PrefixRestrictionsOfExample32AreValid) {
  const auto e = rc11::testing::make_example_32();
  ASSERT_TRUE(is_valid(e.ex));
  for (EventId ev = 0; ev < e.ex.size(); ++ev) {
    util::Bitset seed(e.ex.size());
    seed.set(ev);
    const Execution r = e.ex.restrict(e.ex.sbrf_prefix(seed));
    EXPECT_TRUE(is_valid(r)) << "prefix of e" << ev;
  }
}

class PrefixValidityTest : public ::testing::TestWithParam<std::string> {};

TEST_P(PrefixValidityTest, AllPrefixesOfAllFinalExecutionsValid) {
  // The completeness proof walks sb u rf prefixes of the justified final
  // execution; every such prefix must itself be valid.
  const lang::Program p =
      lang::parse_litmus(litmus::find_test(GetParam()).source).program;
  mc::Visitor v;
  v.on_final = [&](const interp::Config& c) {
    for (EventId ev = 0; ev < c.exec.size(); ++ev) {
      util::Bitset seed(c.exec.size());
      seed.set(ev);
      const Execution r = c.exec.restrict(c.exec.sbrf_prefix(seed));
      EXPECT_TRUE(is_valid(r));
    }
    return true;
  };
  (void)mc::explore(p, {}, v);
}

INSTANTIATE_TEST_SUITE_P(Programs, PrefixValidityTest,
                         ::testing::Values("MP_ra", "SB", "SwapAtomicity",
                                           "CoWW"),
                         [](const auto& info) { return info.param; });

TEST(Restriction, EmptyKeepYieldsEmptyExecution) {
  const auto e = rc11::testing::make_example_32();
  const Execution r = e.ex.restrict(util::Bitset(e.ex.size()));
  EXPECT_EQ(r.size(), 0u);
  EXPECT_TRUE(is_valid(r));  // vacuously valid
}

}  // namespace
}  // namespace rc11::c11
