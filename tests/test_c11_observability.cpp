// Observability tests (Section 3.2): the exact EW/OW/CW sets of
// Example 3.4 and the covered-write behaviour of Example 3.5.
//
// The expectations below are the values of the *definitions* (Section 3.2)
// applied to the Example-3.2 state. The extracted paper text of
// Example 3.4 disagrees in three places, but is internally inconsistent
// there: with the paper's own sw edge wrR_2(x,2) -> updRA_1(x,2,4) and
// thread 2's program order wr(y,1); wrR(x,2) (required for EW(3) to
// contain wr2(y,1) as the paper states), thread 1's acquiring update puts
// wr2(y,1) and updRA_4(y,0,5) into EW(1) via sb;sw — so the printed EW(1)
// is missing elements, which propagates to OW(1) and OW(2). The extraction
// of this example is visibly lossy (dropped variable names, scrambled
// subscripts in Example 3.5); see EXPERIMENTS.md, entry E34.
#include <gtest/gtest.h>

#include <algorithm>

#include "c11/observability.hpp"
#include "helpers.hpp"

namespace rc11::c11 {
namespace {

using rc11::testing::Example32;
using rc11::testing::make_example_32;

class Example34Test : public ::testing::Test {
 protected:
  Example32 e = make_example_32();
  DerivedRelations d = compute_derived(e.ex);

  std::vector<EventId> set_of(const util::Bitset& b) {
    std::vector<EventId> out;
    b.for_each([&](std::size_t i) { out.push_back(static_cast<EventId>(i)); });
    return out;
  }

  std::vector<EventId> sorted(std::vector<EventId> v) {
    std::sort(v.begin(), v.end());
    return v;
  }
};

TEST_F(Example34Test, EncounteredWritesMatchThePaper) {
  // EW(1): thread 1's acquiring update synchronises with wrR2(x,2), so it
  // encounters everything hb-before it: wr2(y,1) (sb-prior in thread 2)
  // and updRA4(y,0,5) (mo-prior to wr2(y,1)), besides wrR2 and itself.
  EXPECT_EQ(set_of(encountered_writes(e.ex, d, 1)),
            sorted({e.init_x, e.init_y, e.init_z, e.wr2_y, e.wr2_x,
                    e.upd1_x, e.upd4_y}));
  // EW(2) = I u {wr2(y,1), wrR2(x,2), updRA4(y,0,5)}
  EXPECT_EQ(set_of(encountered_writes(e.ex, d, 2)),
            sorted({e.init_x, e.init_y, e.init_z, e.wr2_y, e.wr2_x,
                    e.upd4_y}));
  // EW(3) = I u {wr2(y,1), wrR2(x,2), wr3(z,3), updRA4(y,0,5)}
  EXPECT_EQ(set_of(encountered_writes(e.ex, d, 3)),
            sorted({e.init_x, e.init_y, e.init_z, e.wr2_y, e.wr2_x, e.wr3_z,
                    e.upd4_y}));
  // EW(4) = I u {wr3(z,3), updRA4(y,0,5)}
  EXPECT_EQ(set_of(encountered_writes(e.ex, d, 4)),
            sorted({e.init_x, e.init_y, e.init_z, e.wr3_z, e.upd4_y}));
}

TEST_F(Example34Test, EncounteredWritesEmptyForInactiveThread) {
  // EW(t) = {} if t has executed no actions.
  EXPECT_TRUE(encountered_writes(e.ex, d, 9).empty());
}

TEST_F(Example34Test, ObservableWritesMatchThePaper) {
  // OW(1): follows from the corrected EW(1) — init_y and updRA4 are no
  // longer observable (their mo-successors are encountered).
  EXPECT_EQ(set_of(observable_writes(e.ex, d, 1)),
            sorted({e.init_z, e.wr2_y, e.upd1_x, e.wr3_z}));
  // OW(2): the printed set plus wrR2(x,2), whose only mo-successor
  // updRA1(x,2,4) is not in EW(2) (same reasoning as the paper's OW(3),
  // which does include wrR2).
  EXPECT_EQ(set_of(observable_writes(e.ex, d, 2)),
            sorted({e.init_z, e.wr2_y, e.wr2_x, e.wr3_z, e.upd1_x}));
  // OW(3) = {wr2(y,1), wrR2(x,2), wr3(z,3), updRA1}
  EXPECT_EQ(set_of(observable_writes(e.ex, d, 3)),
            sorted({e.wr2_y, e.wr2_x, e.wr3_z, e.upd1_x}));
  // OW(4) = {wr0(x,0), wr2(y,1), wrR2(x,2), wr3(z,3), updRA1, updRA4}
  EXPECT_EQ(set_of(observable_writes(e.ex, d, 4)),
            sorted({e.init_x, e.wr2_y, e.wr2_x, e.wr3_z, e.upd1_x,
                    e.upd4_y}));
}

TEST_F(Example34Test, CoveredWritesAreTheUpdateSources) {
  // CW = {wr0(y,0), wrR2(x,2)}.
  EXPECT_EQ(set_of(covered_writes(e.ex)), sorted({e.init_y, e.wr2_x}));
}

TEST_F(Example34Test, BundleAgreesWithIndividualFunctions) {
  for (ThreadId t = 1; t <= 4; ++t) {
    const Observability o = compute_observability(e.ex, d, t);
    EXPECT_EQ(o.encountered, encountered_writes(e.ex, d, t));
    EXPECT_EQ(o.observable, observable_writes(e.ex, d, t));
    EXPECT_EQ(o.covered, covered_writes(e.ex));
  }
}

TEST_F(Example34Test, ObservableNeverContainsMoPredecessorOfEncountered) {
  // Structural property: w in OW(t) implies no mo-successor of w is in
  // EW(t) — directly the definition, sanity-checked via the bundle.
  for (ThreadId t = 1; t <= 4; ++t) {
    const util::Bitset ew = encountered_writes(e.ex, d, t);
    const util::Bitset ow = observable_writes(e.ex, d, t);
    ow.for_each([&](std::size_t w) {
      EXPECT_TRUE(e.ex.mo().row(w).disjoint(ew))
          << "thread " << t << " write " << w;
    });
  }
}

TEST(Observability, FreshThreadObservesMoMaximalWritesOnly) {
  // A thread that has executed nothing has EW = {} and hence observes
  // every write.
  Execution ex = Execution::initial({{0, 0}});
  const EventId w = ex.add_event(1, Action::wr(0, 1));
  ex.mo_insert_after(0, w);
  const DerivedRelations d = compute_derived(ex);
  const util::Bitset ow = observable_writes(ex, d, 2);
  EXPECT_TRUE(ow.test(0));
  EXPECT_TRUE(ow.test(w));
}

TEST(Observability, ReadMakesOlderWriteUnobservable) {
  // After thread 2 reads the newer write, the older write leaves OW(2):
  // the newer write is encountered and mo-after the older one.
  Execution ex = Execution::initial({{0, 0}});
  const EventId w = ex.add_event(1, Action::wr(0, 1));
  ex.mo_insert_after(0, w);
  const EventId r = ex.add_event(2, Action::rd(0, 1));
  ex.add_rf(w, r);
  const DerivedRelations d = compute_derived(ex);
  const util::Bitset ow = observable_writes(ex, d, 2);
  EXPECT_FALSE(ow.test(0));
  EXPECT_TRUE(ow.test(w));
}

// --- Example 3.5: covered writes block insertion ---------------------------

TEST(CoveredWrites, Example35NoInsertionBetweenSourceAndUpdate) {
  // State: wrR(x,2) then updRA(x,2,4); wr0(y,0) then updRA(y,0,5).
  // No thread may insert a write between a covered write and its update.
  const Example32 e = make_example_32();
  const util::Bitset cw = covered_writes(e.ex);
  EXPECT_TRUE(cw.test(e.wr2_x));
  EXPECT_TRUE(cw.test(e.init_y));
  // Insertion candidates exclude covered writes for all threads.
  const DerivedRelations d = compute_derived(e.ex);
  for (ThreadId t = 1; t <= 4; ++t) {
    util::Bitset allowed = observable_writes(e.ex, d, t);
    allowed.subtract(cw);
    EXPECT_FALSE(allowed.test(e.wr2_x)) << "thread " << t;
    EXPECT_FALSE(allowed.test(e.init_y)) << "thread " << t;
  }
}

}  // namespace
}  // namespace rc11::c11
