// Tests for the non-atomic access extension and data-race detection
// (c11/races.hpp): the dr definition of the paper's Memalloy appendix,
// the classic race-free message-passing pattern, and catch-fire
// reporting in the model checker.
#include <gtest/gtest.h>

#include "c11/axioms.hpp"
#include "c11/races.hpp"
#include "lang/builder.hpp"
#include "lang/parser.hpp"
#include "mc/checker.hpp"

namespace rc11::c11 {
namespace {

TEST(Races, ConflictRequiresSameVarAndAWrite) {
  Execution ex = Execution::initial({{0, 0}, {1, 0}});
  const EventId w = ex.add_event(1, Action::wr_na(0, 1));
  ex.mo_insert_after(0, w);
  const EventId r = ex.add_event(2, Action::rd_na(0, 1));
  ex.add_rf(w, r);
  const EventId r2 = ex.add_event(3, Action::rd(1, 0));
  ex.add_rf(1, r2);

  EXPECT_TRUE(conflicting(ex, w, r));
  EXPECT_FALSE(conflicting(ex, w, r2));  // different variable
  EXPECT_FALSE(conflicting(ex, r, r2));  // different variable
  EXPECT_FALSE(conflicting(ex, w, w));   // id excluded
  // Two reads of the same variable do not conflict.
  const EventId r3 = ex.add_event(4, Action::rd_na(0, 1));
  ex.add_rf(w, r3);
  EXPECT_FALSE(conflicting(ex, r, r3));
}

TEST(Races, UnorderedNaWriteAndReadRace) {
  Execution ex = Execution::initial({{0, 0}});
  const EventId w = ex.add_event(1, Action::wr_na(0, 1));
  ex.mo_insert_after(0, w);
  const EventId r = ex.add_event(2, Action::rd_na(0, 0));
  ex.add_rf(0, r);
  const auto race = find_race(ex);
  ASSERT_TRUE(race.has_value());
  EXPECT_EQ(race->first, w);
  EXPECT_EQ(race->second, r);
  EXPECT_NE(race->to_string(ex).find("data race"), std::string::npos);
}

TEST(Races, AtomicAccessesNeverRace) {
  // Same shape, fully relaxed-atomic: no race (cnf \ (A x A)).
  Execution ex = Execution::initial({{0, 0}});
  const EventId w = ex.add_event(1, Action::wr(0, 1));
  ex.mo_insert_after(0, w);
  const EventId r = ex.add_event(2, Action::rd(0, 0));
  ex.add_rf(0, r);
  EXPECT_FALSE(find_race(ex).has_value());
}

TEST(Races, HbOrderRemovesRace) {
  // NA write releases a flag; acquiring reader then reads NA: the sw edge
  // orders the conflicting accesses, so no race (the classic pattern).
  Execution ex = Execution::initial({{0, 0}, {1, 0}});  // d, f
  const EventId wd = ex.add_event(1, Action::wr_na(0, 5));
  ex.mo_insert_after(0, wd);
  const EventId wf = ex.add_event(1, Action::wr_rel(1, 1));
  ex.mo_insert_after(1, wf);
  const EventId rf_ = ex.add_event(2, Action::rd_acq(1, 1));
  ex.add_rf(wf, rf_);
  const EventId rd_ = ex.add_event(2, Action::rd_na(0, 5));
  ex.add_rf(wd, rd_);
  EXPECT_FALSE(find_race(ex).has_value());
}

TEST(Races, SameThreadAccessesNeverRace) {
  Execution ex = Execution::initial({{0, 0}});
  const EventId w = ex.add_event(1, Action::wr_na(0, 1));
  ex.mo_insert_after(0, w);
  const EventId r = ex.add_event(1, Action::rd_na(0, 1));
  ex.add_rf(w, r);
  EXPECT_FALSE(find_race(ex).has_value());
}

TEST(Races, InitWritesDoNotRace) {
  // The initialising write is sb- (hence hb-) before everything.
  Execution ex = Execution::initial({{0, 0}});
  const EventId r = ex.add_event(1, Action::rd_na(0, 0));
  ex.add_rf(0, r);
  EXPECT_FALSE(find_race(ex).has_value());
}

TEST(Races, RaceWithNewEventMatchesFullScan) {
  Execution ex = Execution::initial({{0, 0}});
  const EventId w = ex.add_event(1, Action::wr_na(0, 1));
  ex.mo_insert_after(0, w);
  const EventId r = ex.add_event(2, Action::rd(0, 0));  // atomic read
  ex.add_rf(0, r);
  const DerivedRelations d = compute_derived(ex);
  // Atomic-vs-NA still races (one side non-atomic suffices).
  const auto incremental = race_with(ex, d, r);
  const auto full = find_race(ex, d);
  ASSERT_TRUE(incremental.has_value());
  ASSERT_TRUE(full.has_value());
  EXPECT_EQ(incremental->first, full->first);
  EXPECT_EQ(incremental->second, full->second);
}

// --- Model-checker integration --------------------------------------------------

TEST(RaceChecker, RacyProgramDetected) {
  const auto parsed = lang::parse_litmus(R"(litmus Racy
var x = 0
thread 1 { x :=NA 1; }
thread 2 { r0 := x@NA; }
)");
  const mc::RaceResult r = mc::check_race_free(parsed.program);
  EXPECT_FALSE(r.race_free);
  EXPECT_NE(r.race.find("data race"), std::string::npos);
  EXPECT_FALSE(r.trace.empty());
}

TEST(RaceChecker, MessagePassingWithReleaseAcquireIsRaceFree) {
  // The motivating pattern: NA data protected by an atomic flag.
  const auto parsed = lang::parse_litmus(R"(litmus Guarded
var d = 0
var f = 0
thread 1 { d :=NA 5; f :=R 1; }
thread 2 { while (f@A == 0) { skip; } r0 := d@NA; }
)");
  mc::ExploreOptions opts;
  opts.step.loop_bound = 3;
  const mc::RaceResult r = mc::check_race_free(parsed.program, opts);
  EXPECT_TRUE(r.race_free) << r.race;
  EXPECT_GT(r.stats.states, 0u);
}

TEST(RaceChecker, RelaxedFlagLeavesARace) {
  // Same pattern but the flag write is relaxed: no sw, so the NA accesses
  // to d are unordered when the reader gets f = 1 early... in fact even
  // reading f = 1 does not order them (relaxed rf is not hb), so the race
  // persists.
  const auto parsed = lang::parse_litmus(R"(litmus Unguarded
var d = 0
var f = 0
thread 1 { d :=NA 5; f := 1; }
thread 2 { while (f@A == 0) { skip; } r0 := d@NA; }
)");
  mc::ExploreOptions opts;
  opts.step.loop_bound = 3;
  const mc::RaceResult r = mc::check_race_free(parsed.program, opts);
  EXPECT_FALSE(r.race_free);
}

TEST(RaceChecker, NaAccessesBehaveLikeRelaxedForValues) {
  // Value-wise, NA accesses read observable writes like relaxed ones.
  const auto parsed = lang::parse_litmus(R"(litmus NaValues
var x = 0
thread 1 { x :=NA 1; }
thread 2 { r0 := x@NA; }
)");
  const mc::OutcomeResult o = mc::enumerate_outcomes(parsed.program);
  // r0 in {0, 1}.
  EXPECT_EQ(o.outcomes.size(), 2u);
}

TEST(RaceChecker, RacefreeProgramsStayValid) {
  // Soundness carries over: executions with NA events still satisfy the
  // Definition-4.2 axioms (NA is relaxed at the rf/mo level).
  const auto parsed = lang::parse_litmus(R"(litmus NaValid
var d = 0
var f = 0
thread 1 { d :=NA 5; f :=R 1; }
thread 2 { r0 := f@A; }
)");
  mc::Visitor v;
  v.on_state = [&](const interp::Config& c) {
    EXPECT_TRUE(is_valid(c.exec));
    return true;
  };
  (void)mc::explore(parsed.program, {}, v);
}

TEST(RaceChecker, ParserRoundTripsNaAnnotations) {
  const auto parsed = lang::parse_litmus(R"(litmus NaSyntax
var x = 0
thread 1 { x :=NA x@NA + 1; }
)");
  const std::string s = parsed.program.thread(1)->to_string(
      &parsed.program.vars());
  EXPECT_NE(s.find(":=NA"), std::string::npos);
  EXPECT_NE(s.find("x^NA"), std::string::npos);
}

}  // namespace
}  // namespace rc11::c11
