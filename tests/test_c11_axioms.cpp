// Tests for the Definition-4.2 validity axioms and the Appendix-C weak
// canonical consistency model, including accept/reject cases per axiom and
// the Lemma C.6 reformulation.
#include <gtest/gtest.h>

#include "c11/axioms.hpp"
#include "c11/canonical.hpp"
#include "helpers.hpp"

namespace rc11::c11 {
namespace {

using rc11::testing::make_example_32;

// --- Accepting cases ---------------------------------------------------------

TEST(Axioms, InitialStateIsValid) {
  const Execution ex = Execution::initial({{0, 0}, {1, 1}});
  const ValidityReport r = check_validity(ex);
  EXPECT_TRUE(r.valid()) << r.to_string();
}

TEST(Axioms, Example32IsValid) {
  const ValidityReport r = check_validity(make_example_32().ex);
  EXPECT_TRUE(r.valid()) << r.to_string();
}

// --- SbTotal -----------------------------------------------------------------

TEST(Axioms, SbTotalRejectsUnorderedSameThreadEvents) {
  Execution ex = Execution::initial({{0, 0}});
  // Forge two thread-1 events with the sb edge removed by building a state
  // manually: add both events, then check — add_event creates the edge, so
  // we instead put them in *different* threads and relabel via a raw
  // construction. Simplest: craft an execution where an event of thread 1
  // precedes an initialising write, violating "nothing precedes inits".
  // That is impossible through add_event, so here we check the positive
  // behaviour instead: add_event maintains SbTotal.
  const EventId a = ex.add_event(1, Action::wr(0, 1));
  ex.mo_insert_after(0, a);
  EXPECT_TRUE(check_sb_total(ex));
}

TEST(Axioms, SbTotalRejectsMissingInitEdge) {
  // Build an execution whose init write is added *after* a thread event:
  // add_event does not order later inits before earlier events, so the
  // init-before-everything clause fails.
  Execution ex;
  ex.add_event(1, Action::wr(0, 1));
  ex.add_event(kInitThread, Action::wr(0, 0));
  EXPECT_FALSE(check_sb_total(ex));
  const ValidityReport r = check_validity(ex);
  EXPECT_FALSE(r.valid());
}

// --- MoValid ------------------------------------------------------------------

TEST(Axioms, MoValidRejectsCrossVariableEdges) {
  Execution ex = Execution::initial({{0, 0}, {1, 0}});
  const EventId w = ex.add_event(1, Action::wr(0, 1));
  ex.add_mo(0, w);
  ex.add_mo(1, w);  // init write of variable 1 mo-ordered to a write of 0
  EXPECT_FALSE(check_mo_valid(ex));
}

TEST(Axioms, MoValidRejectsPartialOrderPerVariable) {
  Execution ex = Execution::initial({{0, 0}});
  const EventId a = ex.add_event(1, Action::wr(0, 1));
  const EventId b = ex.add_event(2, Action::wr(0, 2));
  ex.add_mo(0, a);
  ex.add_mo(0, b);
  // a and b unordered: totality fails.
  EXPECT_FALSE(check_mo_valid(ex));
  ex.add_mo(a, b);
  EXPECT_TRUE(check_mo_valid(ex));
}

TEST(Axioms, MoValidRejectsNonInitFirst) {
  Execution ex = Execution::initial({{0, 0}});
  const EventId a = ex.add_event(1, Action::wr(0, 1));
  ex.add_mo(a, 0);  // write ordered before the initialising write
  EXPECT_FALSE(check_mo_valid(ex));
}

TEST(Axioms, MoValidRejectsReadInMo) {
  Execution ex = Execution::initial({{0, 0}});
  const EventId r = ex.add_event(1, Action::rd(0, 0));
  ex.add_rf(0, r);
  ex.add_mo(0, r);
  EXPECT_FALSE(check_mo_valid(ex));
}

// --- RfComplete ----------------------------------------------------------------

TEST(Axioms, RfCompleteRejectsUnjustifiedRead) {
  Execution ex = Execution::initial({{0, 0}});
  ex.add_event(1, Action::rd(0, 0));  // no rf edge
  EXPECT_FALSE(check_rf_complete(ex));
}

TEST(Axioms, RfCompleteRejectsValueMismatch) {
  Execution ex = Execution::initial({{0, 0}});
  const EventId r = ex.add_event(1, Action::rd(0, 7));
  ex.add_rf(0, r);  // init writes 0, read returns 7
  EXPECT_FALSE(check_rf_complete(ex));
}

TEST(Axioms, RfCompleteRejectsVariableMismatch) {
  Execution ex = Execution::initial({{0, 0}, {1, 0}});
  const EventId r = ex.add_event(1, Action::rd(1, 0));
  ex.add_rf(0, r);  // writer writes variable 0, reader reads variable 1
  EXPECT_FALSE(check_rf_complete(ex));
}

TEST(Axioms, RfCompleteRejectsTwoWriters) {
  Execution ex = Execution::initial({{0, 0}});
  const EventId w = ex.add_event(1, Action::wr(0, 0));
  ex.mo_insert_after(0, w);
  const EventId r = ex.add_event(2, Action::rd(0, 0));
  ex.add_rf(0, r);
  ex.add_rf(w, r);
  EXPECT_FALSE(check_rf_complete(ex));
}

TEST(Axioms, RfCompleteAcceptsJustifiedReads) {
  Execution ex = Execution::initial({{0, 5}});
  const EventId r = ex.add_event(1, Action::rd(0, 5));
  ex.add_rf(0, r);
  EXPECT_TRUE(check_rf_complete(ex));
}

// --- NoThinAir -------------------------------------------------------------------

TEST(Axioms, NoThinAirRejectsSbRfCycle) {
  // Load-buffering shape: r1 := x; y := 1  ||  r2 := y; x := 1 with both
  // reads observing the future writes.
  Execution ex = Execution::initial({{0, 0}, {1, 0}});
  const EventId r1 = ex.add_event(1, Action::rd(0, 1));
  const EventId w1 = ex.add_event(1, Action::wr(1, 1));
  const EventId r2 = ex.add_event(2, Action::rd(1, 1));
  const EventId w2 = ex.add_event(2, Action::wr(0, 1));
  ex.add_rf(w2, r1);
  ex.add_rf(w1, r2);
  ex.add_mo(0, w2);
  ex.add_mo(1, w1);
  EXPECT_FALSE(check_no_thin_air(ex));
  EXPECT_FALSE(is_valid(ex));
}

// --- Coherence --------------------------------------------------------------------

TEST(Axioms, CoherenceRejectsStaleReadAfterSync) {
  // Message passing violation: d := 5; f :=R 1 || rdA(f,1); rd(d,0).
  Execution ex = Execution::initial({{0, 0}, {1, 0}});  // d=var0, f=var1
  const EventId wd = ex.add_event(1, Action::wr(0, 5));
  ex.mo_insert_after(0, wd);
  const EventId wf = ex.add_event(1, Action::wr_rel(1, 1));
  ex.mo_insert_after(1, wf);
  const EventId rf_ = ex.add_event(2, Action::rd_acq(1, 1));
  ex.add_rf(wf, rf_);
  const EventId rd_ = ex.add_event(2, Action::rd(0, 0));
  ex.add_rf(0, rd_);  // stale read of d = 0 from the initialising write
  const DerivedRelations d = compute_derived(ex);
  EXPECT_FALSE(check_coherence(ex, d));
  EXPECT_FALSE(is_valid(ex));
}

TEST(Axioms, CoherenceRejectsEcoCycleFromBadMo) {
  // Same-thread writes with mo opposing sb: w(x,1); w(x,2) but
  // mo(second, first).
  Execution ex = Execution::initial({{0, 0}});
  const EventId a = ex.add_event(1, Action::wr(0, 1));
  const EventId b = ex.add_event(1, Action::wr(0, 2));
  ex.add_mo(0, a);
  ex.add_mo(0, b);
  ex.add_mo(b, a);  // against sb
  const DerivedRelations d = compute_derived(ex);
  EXPECT_FALSE(check_coherence(ex, d));
}

// --- Appendix C: weak canonical consistency -----------------------------------------

TEST(Canonical, ValidExecutionIsCanonicallyConsistent) {
  const auto e = make_example_32();
  const CanonicalReport r = check_weak_canonical(e.ex);
  EXPECT_TRUE(r.consistent()) << r.to_string();
}

TEST(Canonical, UpdViolationDetected) {
  // An update that does not read its immediate mo-predecessor:
  // init -> w -> u in mo but u reads init.
  Execution ex = Execution::initial({{0, 0}});
  const EventId w = ex.add_event(1, Action::wr(0, 0));
  ex.mo_insert_after(0, w);
  const EventId u = ex.add_event(2, Action::upd(0, 0, 1));
  ex.add_rf(0, u);  // reads init, but w sits between them in mo
  ex.add_mo(0, u);
  ex.add_mo(w, u);
  const CanonicalReport r = check_weak_canonical(ex);
  EXPECT_FALSE(r.consistent());
  bool has_upd = false;
  for (CanonicalAxiom a : r.violated) {
    if (a == CanonicalAxiom::kUpd) has_upd = true;
  }
  EXPECT_TRUE(has_upd) << r.to_string();
  // Theorem C.15: Definition 4.2's Coherence must reject it too.
  const DerivedRelations d = compute_derived(ex);
  EXPECT_FALSE(check_def42_coherence(ex, d));
}

TEST(Canonical, UpdReformulationAgreesWithUpd) {
  // Lemma C.6: irrefl((mo;mo;rf^-1) u (mo;rf)) iff irrefl(fr;mo) and
  // irrefl(rf;mo) — checked on both a consistent and an inconsistent state.
  const auto good = make_example_32();
  const DerivedRelations dg = compute_derived(good.ex);
  EXPECT_TRUE(check_upd_reformulated(good.ex, dg));

  Execution bad = Execution::initial({{0, 0}});
  const EventId w = bad.add_event(1, Action::wr(0, 0));
  bad.mo_insert_after(0, w);
  const EventId u = bad.add_event(2, Action::upd(0, 0, 1));
  bad.add_rf(0, u);
  bad.add_mo(0, u);
  bad.add_mo(w, u);
  const DerivedRelations db = compute_derived(bad);
  EXPECT_FALSE(check_upd_reformulated(bad, db));
}

TEST(Canonical, RfHbViolationDetected) {
  // A read that happens-before its writer: r sb-before w in one thread,
  // reading from w (also an sb u rf cycle).
  Execution ex = Execution::initial({{0, 0}});
  const EventId r = ex.add_event(1, Action::rd(0, 1));
  const EventId w = ex.add_event(1, Action::wr(0, 1));
  ex.add_rf(w, r);
  ex.add_mo(0, w);
  const CanonicalReport rep = check_weak_canonical(ex);
  EXPECT_FALSE(rep.consistent());
  const DerivedRelations d = compute_derived(ex);
  EXPECT_FALSE(check_def42_coherence(ex, d));
}

TEST(Canonical, ReportNamesViolatedAxioms) {
  Execution ex = Execution::initial({{0, 0}});
  const EventId r = ex.add_event(1, Action::rd(0, 1));
  const EventId w = ex.add_event(1, Action::wr(0, 1));
  ex.add_rf(w, r);
  ex.add_mo(0, w);
  const CanonicalReport rep = check_weak_canonical(ex);
  EXPECT_NE(rep.to_string().find("RF"), std::string::npos);
}

}  // namespace
}  // namespace rc11::c11
