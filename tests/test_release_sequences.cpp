// Tests for the release-sequence variant of synchronises-with
// (Appendix C): sw is a subset of swC, Lemma C.4 (canonical consistency
// implies weak canonical consistency), and a concrete execution where the
// two models differ — accepted by the paper's release-sequence-free model,
// rejected by the canonical one.
#include <gtest/gtest.h>

#include "c11/axioms.hpp"
#include "c11/canonical.hpp"
#include "lang/parser.hpp"
#include "mc/explorer.hpp"

namespace rc11::c11 {
namespace {

TEST(ReleaseSequences, SwIsSubsetOfSwCanonical) {
  // Property over all reachable states of a release-sequence-rich program.
  const auto parsed = lang::parse_litmus(R"(litmus RsRich
var d = 0
var f = 0
thread 1 { d := 5; f :=R 1; f := 2; }
thread 2 { r0 := f@A; r1 := d; }
)");
  mc::Visitor v;
  v.on_state = [&](const interp::Config& c) {
    const util::Relation sw = compute_sw(c.exec);
    const util::Relation swc = compute_sw_canonical(c.exec);
    for (auto [a, b] : sw.pairs()) {
      EXPECT_TRUE(swc.contains(a, b)) << "sw edge missing from swC";
    }
    return true;
  };
  (void)mc::explore(parsed.program, {}, v);
}

TEST(ReleaseSequences, DirectSwEdgesAgreeWithoutSequences) {
  // With no same-thread same-variable write pairs and no RMWs, the two
  // definitions coincide.
  Execution ex = Execution::initial({{0, 0}});
  const EventId w = ex.add_event(1, Action::wr_rel(0, 1));
  ex.mo_insert_after(0, w);
  const EventId r = ex.add_event(2, Action::rd_acq(0, 1));
  ex.add_rf(w, r);
  EXPECT_EQ(compute_sw(ex), compute_sw_canonical(ex));
}

/// The discriminating execution: thread 1 writes data, releases a flag,
/// then *overwrites the flag relaxed*; thread 2 acquires the overwritten
/// value and reads the data stale.
///
///   d := 5 ; f :=R 1 ; f := 2   ||   rdA(f, 2) ; rd(d, 0)
///
/// Under the canonical model the release sequence of f :=R 1 contains
/// f := 2 (poloc), so the acquiring read synchronises and the stale read
/// of d violates COH. Under the paper's model there is no sw edge, and
/// the execution is valid.
Execution discriminating_execution() {
  Execution ex = Execution::initial({{0, 0}, {1, 0}});  // d, f
  const EventId wd = ex.add_event(1, Action::wr(0, 5));
  ex.mo_insert_after(0, wd);
  const EventId wf1 = ex.add_event(1, Action::wr_rel(1, 1));
  ex.mo_insert_after(1, wf1);
  const EventId wf2 = ex.add_event(1, Action::wr(1, 2));
  ex.mo_insert_after(wf1, wf2);
  const EventId rf_ = ex.add_event(2, Action::rd_acq(1, 2));
  ex.add_rf(wf2, rf_);
  const EventId rd_ = ex.add_event(2, Action::rd(0, 0));  // stale
  ex.add_rf(0, rd_);
  return ex;
}

TEST(ReleaseSequences, ModelsDifferOnReleaseSequenceExecution) {
  const Execution ex = discriminating_execution();
  // The paper's model accepts it...
  EXPECT_TRUE(is_valid(ex));
  EXPECT_TRUE(check_weak_canonical(ex).consistent());
  // ... the canonical model (with release sequences) rejects it.
  const CanonicalReport rs = check_canonical_with_release_sequences(ex);
  EXPECT_FALSE(rs.consistent());
  bool has_coh = false;
  for (CanonicalAxiom a : rs.violated) {
    if (a == CanonicalAxiom::kCoh) has_coh = true;
  }
  EXPECT_TRUE(has_coh) << rs.to_string();
}

TEST(ReleaseSequences, SwCanonicalContainsTheSequenceEdge) {
  const Execution ex = discriminating_execution();
  const util::Relation swc = compute_sw_canonical(ex);
  const util::Relation sw = compute_sw(ex);
  // Tags: 0,1 inits; 2 wd; 3 wf1 (release); 4 wf2 (relaxed); 5 rdA; 6 rd.
  // wf1 -> rdA: present canonically (poloc into wf2, rf to the read),
  // absent in the paper's sw (the read reads the relaxed wf2).
  EXPECT_TRUE(swc.contains(3, 5));
  EXPECT_FALSE(sw.contains(3, 5));
  // And the relaxed wf2 synchronises in neither model.
  EXPECT_FALSE(swc.contains(4, 5));
  EXPECT_FALSE(sw.contains(4, 5));
}

TEST(ReleaseSequences, LemmaC4CanonicalImpliesWeak) {
  // Lemma C.4 (contrapositive form): on every reachable execution of a
  // program, weak-canonical inconsistency implies canonical (with-rs)
  // inconsistency; equivalently canonical consistency implies weak.
  const auto parsed = lang::parse_litmus(R"(litmus L4
var d = 0
var f = 0
thread 1 { d := 5; f :=R 1; f := 2; }
thread 2 { r0 := f@A; r1 := d; }
)");
  mc::Visitor v;
  v.on_state = [&](const interp::Config& c) {
    const bool canonical =
        check_canonical_with_release_sequences(c.exec).consistent();
    const bool weak = check_weak_canonical(c.exec).consistent();
    if (canonical) { EXPECT_TRUE(weak); }
    return true;
  };
  (void)mc::explore(parsed.program, {}, v);
}

TEST(ReleaseSequences, RmwChainsExtendTheSequence) {
  // Release write, then an RMW chain; an acquire reading the last RMW
  // synchronises with the original release under swC (rf* in rs).
  Execution ex = Execution::initial({{0, 0}});
  const EventId w = ex.add_event(1, Action::wr_rel(0, 1));
  ex.mo_insert_after(0, w);
  const EventId u1 = ex.add_event(2, Action::upd(0, 1, 2));
  ex.add_rf(w, u1);
  ex.mo_insert_after(w, u1);
  const EventId u2 = ex.add_event(3, Action::upd(0, 2, 3));
  ex.add_rf(u1, u2);
  ex.mo_insert_after(u1, u2);
  const EventId r = ex.add_event(4, Action::rd_acq(0, 3));
  ex.add_rf(u2, r);

  const util::Relation swc = compute_sw_canonical(ex);
  EXPECT_TRUE(swc.contains(w, r));
  // The paper's sw only has the direct edges w->u1, u1->u2, u2->r.
  const util::Relation sw = compute_sw(ex);
  EXPECT_FALSE(sw.contains(w, r));
  EXPECT_TRUE(sw.contains(u2, r));
  // But hb still relates w to r in both models (sw chains through the
  // updates compose via hb transitivity) — the RMW chain is why the
  // paper can afford to drop release sequences for RAR programs whose
  // same-location writes are updates.
  EXPECT_TRUE(compute_hb(ex).contains(w, r));
}

}  // namespace
}  // namespace rc11::c11
