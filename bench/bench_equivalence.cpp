// Experiments T44 / T48 / C7: cost of the machine-checked metatheory —
// soundness (Theorem 4.4), completeness (Theorem 4.8) and the
// Memalloy-style coherence agreement (Theorem C.15) — per litmus program,
// plus a size-scaling series over straight-line programs (the analogue of
// the paper's "models up to size 7" Alloy bound).
#include <benchmark/benchmark.h>

#include "rc11/rc11.hpp"

using namespace rc11;

namespace {

const char* kPrograms[] = {"SB", "MP_ra", "LB", "CoWW", "SwapAtomicity",
                           "W2+2W"};

void soundness(benchmark::State& state) {
  const lang::Program p = lang::parse_litmus(
      litmus::find_test(kPrograms[state.range(0)]).source).program;
  std::size_t states = 0;
  bool sound = false;
  for (auto _ : state) {
    const axiomatic::SoundnessResult r = axiomatic::check_soundness(p);
    states = r.states_checked;
    sound = r.sound;
  }
  state.SetLabel(kPrograms[state.range(0)]);
  state.counters["states"] = static_cast<double>(states);
  state.counters["sound"] = sound ? 1 : 0;
}
BENCHMARK(soundness)->DenseRange(0, 5)->Unit(benchmark::kMillisecond);

void completeness(benchmark::State& state) {
  const lang::Program p = lang::parse_litmus(
      litmus::find_test(kPrograms[state.range(0)]).source).program;
  std::size_t candidates = 0;
  bool equivalent = false;
  for (auto _ : state) {
    const axiomatic::CompletenessResult r = axiomatic::check_completeness(p);
    candidates = r.enumerate_stats.candidates;
    equivalent = r.equivalent();
  }
  state.SetLabel(kPrograms[state.range(0)]);
  state.counters["candidates"] = static_cast<double>(candidates);
  state.counters["equivalent"] = equivalent ? 1 : 0;
}
BENCHMARK(completeness)->DenseRange(0, 5)->Unit(benchmark::kMillisecond);

void coherence_agreement(benchmark::State& state) {
  const lang::Program p = lang::parse_litmus(
      litmus::find_test(kPrograms[state.range(0)]).source).program;
  std::size_t candidates = 0;
  bool agree = false;
  for (auto _ : state) {
    const axiomatic::AgreementResult r =
        axiomatic::check_coherence_agreement(p);
    candidates = r.candidates_checked;
    agree = r.agree;
  }
  state.SetLabel(kPrograms[state.range(0)]);
  state.counters["candidates"] = static_cast<double>(candidates);
  state.counters["agree"] = agree ? 1 : 0;
}
BENCHMARK(coherence_agreement)->DenseRange(0, 5)->Unit(
    benchmark::kMillisecond);

/// Size scaling: n writer threads + one reader over a single variable.
/// Execution size grows with n (2n + 2 events), the analogue of the
/// paper's Alloy size bound.
lang::Program sized_program(int writers) {
  lang::ProgramBuilder b;
  auto x = b.var("x", 0);
  for (int i = 0; i < writers; ++i) {
    b.thread({lang::assign(x, i + 1)});
  }
  auto r = b.reg("r");
  b.thread({lang::reg_assign(r, lang::ExprPtr(x))});
  return std::move(b).build();
}

void completeness_vs_size(benchmark::State& state) {
  const lang::Program p = sized_program(static_cast<int>(state.range(0)));
  std::size_t candidates = 0;
  bool equivalent = false;
  for (auto _ : state) {
    const axiomatic::CompletenessResult r = axiomatic::check_completeness(p);
    candidates = r.enumerate_stats.candidates;
    equivalent = r.equivalent();
  }
  state.counters["candidates"] = static_cast<double>(candidates);
  state.counters["equivalent"] = equivalent ? 1 : 0;
}
BENCHMARK(completeness_vs_size)->DenseRange(1, 4)->Unit(
    benchmark::kMillisecond);

}  // namespace

#include "bench_report.hpp"

RC11_BENCH_MAIN("equivalence")
