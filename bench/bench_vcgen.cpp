// Experiment F4: proof-calculus costs — assertion evaluation, Figure-4
// rule sweeps over reachable transitions, and fuzz-breadth sweeps over
// generated programs (how the machine-checked Appendix-B obligations
// scale).
#include <benchmark/benchmark.h>

#include "rc11/rc11.hpp"

using namespace rc11;

namespace {

void assertion_evaluation(benchmark::State& state) {
  // d =_t v and x -> y on a Peterson-reachable execution of growing size.
  const lang::Program p = vcgen::make_peterson();
  mc::ExploreOptions opts;
  opts.step.loop_bound = static_cast<int>(state.range(0));
  // Grab the deepest reachable execution.
  c11::Execution deep;
  mc::Visitor v;
  v.on_state = [&](const interp::Config& c) {
    if (c.exec.size() > deep.size()) deep = c.exec;
    return true;
  };
  (void)mc::explore(p, opts, v);

  const auto d = c11::compute_derived(deep);
  for (auto _ : state) {
    for (c11::ThreadId t = 1; t <= 2; ++t) {
      for (c11::VarId x = 0; x < deep.var_count(); ++x) {
        benchmark::DoNotOptimize(
            vcgen::determinate_value_of(deep, d, t, x));
        for (c11::VarId y = 0; y < deep.var_count(); ++y) {
          benchmark::DoNotOptimize(vcgen::var_order(deep, d, x, y));
        }
      }
    }
  }
  state.counters["events"] = static_cast<double>(deep.size());
}
BENCHMARK(assertion_evaluation)->DenseRange(0, 2);

void rule_sweep_per_program(benchmark::State& state) {
  static const char* kNames[] = {"SB", "MP_ra", "MP_swap", "SwapAtomicity",
                                 "CoWW"};
  const lang::Program p = lang::parse_litmus(
      litmus::find_test(kNames[state.range(0)]).source).program;
  std::size_t applicable = 0;
  for (auto _ : state) {
    const vcgen::RuleSoundnessResult r = vcgen::check_rule_soundness(p);
    applicable = r.applicable;
  }
  state.SetLabel(kNames[state.range(0)]);
  state.counters["rule_instances"] = static_cast<double>(applicable);
}
BENCHMARK(rule_sweep_per_program)->DenseRange(0, 4)->Unit(
    benchmark::kMillisecond);

void rule_sweep_fuzz(benchmark::State& state) {
  // Aggregate rule-instance throughput over a family of generated
  // programs.
  std::vector<lang::Program> programs;
  for (std::uint32_t seed = 0; seed < 8; ++seed) {
    lang::GeneratorOptions o;
    o.seed = seed;
    o.threads = 2;
    o.vars = 2;
    o.stmts_per_thread = 2;
    programs.push_back(lang::generate_program(o));
  }
  std::size_t total = 0;
  for (auto _ : state) {
    total = 0;
    for (const lang::Program& p : programs) {
      total += vcgen::check_rule_soundness(p).applicable;
    }
  }
  state.counters["rule_instances"] = static_cast<double>(total);
}
BENCHMARK(rule_sweep_fuzz)->Unit(benchmark::kMillisecond);

void hb_cone_cost(benchmark::State& state) {
  vcgen::PetersonHandles h;
  const lang::Program p = vcgen::make_peterson(&h);
  mc::ExploreOptions opts;
  opts.step.loop_bound = 2;
  c11::Execution deep;
  mc::Visitor v;
  v.on_state = [&](const interp::Config& c) {
    if (c.exec.size() > deep.size()) deep = c.exec;
    return true;
  };
  (void)mc::explore(p, opts, v);
  const auto d = c11::compute_derived(deep);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vcgen::hb_cone(deep, d, 1));
    benchmark::DoNotOptimize(vcgen::hb_cone(deep, d, 2));
  }
  state.counters["events"] = static_cast<double>(deep.size());
}
BENCHMARK(hb_cone_cost);

}  // namespace

#include "bench_report.hpp"

RC11_BENCH_MAIN("vcgen")
