// Machine-readable benchmark results.
//
// Every bench binary ends with RC11_BENCH_MAIN("<name>") instead of
// BENCHMARK_MAIN(). It runs google-benchmark with a reporter that mirrors
// the console output and additionally captures, for every benchmark run:
//
//   * real_ms_per_iter — wall time per iteration;
//   * every user counter attached via state.counters (states, transitions,
//     peak_seen_bytes, ...);
//   * derived throughput: states_per_sec / transitions_per_sec whenever the
//     corresponding counters are present.
//
// After the run the registry is written to BENCH_<name>.json in the
// working directory, so CI can upload the files as artifacts and the perf
// trajectory across PRs has comparable data points (see
// tools/check_bench_regression.py for the smoke threshold).
#pragma once

#include <benchmark/benchmark.h>

#include <cstddef>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "mc/statespace.hpp"
#include "obs/telemetry.hpp"

namespace rc11bench {

inline std::map<std::string, std::map<std::string, double>>& registry() {
  static std::map<std::string, std::map<std::string, double>> r;
  return r;
}

inline void record(const std::string& bench, const std::string& key,
                   double value) {
  registry()[bench][key] = value;
}

/// Attaches a run's phase profile to the benchmark's user counters as
/// phase_ns_<name> (exclusive nanoseconds) and phase_share_<name>
/// (fraction of instrumented time, disjoint by construction). Benches
/// call this after one *untimed* telemetry-enabled pass so the timed
/// loop stays telemetry-off; no-op for an empty profile.
inline void record_phase_counters(benchmark::State& state,
                                  const rc11::obs::PhaseProfile& profile) {
  if (profile.empty()) return;
  for (std::size_t i = 0; i < rc11::obs::kPhaseCount; ++i) {
    const auto p = static_cast<rc11::obs::Phase>(i);
    const rc11::obs::PhaseProfile::Entry& e = profile[p];
    if (e.count == 0) continue;
    const std::string name = rc11::obs::phase_name(p);
    state.counters["phase_ns_" + name] =
        static_cast<double>(e.ns);
    state.counters["phase_share_" + name] = profile.share(p);
  }
}

/// Emits one w<k>_<field> counter per worker of a parallel run so
/// steal-rate / load-balance regressions are visible in BENCH_*.json,
/// not just in the aggregated totals.
inline void record_worker_counters(
    benchmark::State& state,
    const std::vector<rc11::mc::WorkerStats>& workers) {
  for (std::size_t k = 0; k < workers.size(); ++k) {
    const rc11::mc::WorkerStats& w = workers[k];
    const std::string pre = "w" + std::to_string(k) + "_";
    state.counters[pre + "processed"] = static_cast<double>(w.processed);
    state.counters[pre + "enqueued"] = static_cast<double>(w.enqueued);
    state.counters[pre + "steals"] = static_cast<double>(w.steals);
    state.counters[pre + "merged"] = static_cast<double>(w.merged);
    state.counters[pre + "enum_reused"] =
        static_cast<double>(w.enum_reused);
    state.counters[pre + "enum_recomputed"] =
        static_cast<double>(w.enum_recomputed);
  }
}

/// Console output plus registry capture.
class JsonRegistryReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      std::string name = run.benchmark_name();
      if (!run.report_label.empty()) name += "/" + run.report_label;
      auto& entry = registry()[name];
      const double iters = run.iterations > 0
                               ? static_cast<double>(run.iterations)
                               : 1.0;
      const double secs_per_iter = run.real_accumulated_time / iters;
      entry["real_ms_per_iter"] = secs_per_iter * 1e3;
      for (const auto& [key, counter] : run.counters) {
        entry[key] = counter.value;
      }
      if (secs_per_iter > 0) {
        const auto derive = [&](const char* counter, const char* out) {
          const auto it = run.counters.find(counter);
          if (it != run.counters.end()) {
            entry[out] = it->second.value / secs_per_iter;
          }
        };
        derive("states", "states_per_sec");
        derive("transitions", "transitions_per_sec");
      }
    }
    ConsoleReporter::ReportRuns(runs);
  }
};

inline void escape_into(std::string& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
}

/// Writes BENCH_<name>.json: {"bench": <name>, "benchmarks": {...}}.
inline void write_report(const std::string& name) {
  const std::string path = "BENCH_" + name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return;
  std::string esc;
  escape_into(esc, name);
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"benchmarks\": {", esc.c_str());
  bool first_bench = true;
  for (const auto& [bench, metrics] : registry()) {
    esc.clear();
    escape_into(esc, bench);
    std::fprintf(f, "%s\n    \"%s\": {", first_bench ? "" : ",",
                 esc.c_str());
    first_bench = false;
    bool first_metric = true;
    for (const auto& [key, value] : metrics) {
      esc.clear();
      escape_into(esc, key);
      std::fprintf(f, "%s\n      \"%s\": %.17g", first_metric ? "" : ",",
                   esc.c_str(), value);
      first_metric = false;
    }
    std::fprintf(f, "\n    }");
  }
  std::fprintf(f, "\n  }\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace rc11bench

#define RC11_BENCH_MAIN(NAME)                                          \
  int main(int argc, char** argv) {                                    \
    benchmark::Initialize(&argc, argv);                                \
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;  \
    rc11bench::JsonRegistryReporter reporter;                          \
    benchmark::RunSpecifiedBenchmarks(&reporter);                      \
    benchmark::Shutdown();                                             \
    rc11bench::write_report(NAME);                                     \
    return 0;                                                          \
  }
