// Experiment M1: model-checker scaling and design ablations —
//  * state count / time vs. number of writer threads;
//  * canonical-form deduplication ON vs OFF (DESIGN.md key decision);
//  * tau compression ON vs OFF.
#include <benchmark/benchmark.h>

#include "rc11/rc11.hpp"

using namespace rc11;

namespace {

lang::Program writers_and_reader(int writers) {
  lang::ProgramBuilder b;
  auto x = b.var("x", 0);
  auto y = b.var("y", 0);
  for (int i = 0; i < writers; ++i) {
    b.thread({lang::assign(i % 2 == 0 ? x : y, i + 1)});
  }
  auto r0 = b.reg("r0");
  auto r1 = b.reg("r1");
  b.thread({lang::reg_assign(r0, lang::ExprPtr(x)),
            lang::reg_assign(r1, lang::ExprPtr(y))});
  return std::move(b).build();
}

void states_vs_threads(benchmark::State& state) {
  const lang::Program p =
      writers_and_reader(static_cast<int>(state.range(0)));
  std::size_t states = 0;
  for (auto _ : state) {
    const mc::ExploreResult r = mc::explore(p, {}, {});
    states = r.stats.states;
  }
  state.counters["states"] = static_cast<double>(states);
}
BENCHMARK(states_vs_threads)->DenseRange(1, 5)->Unit(
    benchmark::kMillisecond);

void dedup_ablation(benchmark::State& state) {
  const bool dedup = state.range(0) != 0;
  const lang::Program p = writers_and_reader(4);
  mc::ExploreOptions opts;
  opts.dedup = dedup;
  std::size_t states = 0;
  for (auto _ : state) {
    const mc::ExploreResult r = mc::explore(p, opts, {});
    states = r.stats.states;
  }
  state.SetLabel(dedup ? "dedup" : "no-dedup");
  state.counters["states"] = static_cast<double>(states);
}
BENCHMARK(dedup_ablation)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

void tau_compression_ablation(benchmark::State& state) {
  const bool tau = state.range(0) != 0;
  const lang::Program p = lang::parse_litmus(
      litmus::find_test("CoRR2").source).program;
  mc::ExploreOptions opts;
  opts.step.tau_compress = tau;
  std::size_t states = 0;
  for (auto _ : state) {
    const mc::OutcomeResult r = mc::enumerate_outcomes(p, opts);
    states = r.stats.states;
  }
  state.SetLabel(tau ? "tau-compress" : "plain");
  state.counters["states"] = static_cast<double>(states);
}
BENCHMARK(tau_compression_ablation)->Arg(1)->Arg(0)->Unit(
    benchmark::kMillisecond);

void peterson_bound_scaling(benchmark::State& state) {
  const lang::Program p = vcgen::make_peterson();
  mc::ExploreOptions opts;
  opts.step.loop_bound = static_cast<int>(state.range(0));
  std::size_t states = 0;
  for (auto _ : state) {
    const mc::ExploreResult r = mc::explore(p, opts, {});
    states = r.stats.states;
  }
  state.counters["states"] = static_cast<double>(states);
}
BENCHMARK(peterson_bound_scaling)->DenseRange(0, 3)->Unit(
    benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
