// Experiment M1: model-checker scaling and design ablations —
//  * state count / time vs. number of writer threads;
//  * canonical-form deduplication ON vs OFF (DESIGN.md key decision);
//  * tau compression ON vs OFF;
//  * seen-set footprint: 128-bit fingerprint tables vs. std::string
//    canonical keys (bytes per state);
//  * sleep-set partial-order reduction ON vs OFF over the litmus catalogue.
#include <benchmark/benchmark.h>

#include "bench_report.hpp"
#include "rc11/rc11.hpp"

using namespace rc11;

namespace {

lang::Program writers_and_reader(int writers) {
  lang::ProgramBuilder b;
  auto x = b.var("x", 0);
  auto y = b.var("y", 0);
  for (int i = 0; i < writers; ++i) {
    b.thread({lang::assign(i % 2 == 0 ? x : y, i + 1)});
  }
  auto r0 = b.reg("r0");
  auto r1 = b.reg("r1");
  b.thread({lang::reg_assign(r0, lang::ExprPtr(x)),
            lang::reg_assign(r1, lang::ExprPtr(y))});
  return std::move(b).build();
}

void states_vs_threads(benchmark::State& state) {
  const lang::Program p =
      writers_and_reader(static_cast<int>(state.range(0)));
  std::size_t states = 0;
  for (auto _ : state) {
    const mc::ExploreResult r = mc::explore(p, {}, {});
    states = r.stats.states;
  }
  state.counters["states"] = static_cast<double>(states);
}
BENCHMARK(states_vs_threads)->DenseRange(1, 5)->Unit(
    benchmark::kMillisecond);

void dedup_ablation(benchmark::State& state) {
  const bool dedup = state.range(0) != 0;
  const lang::Program p = writers_and_reader(4);
  mc::ExploreOptions opts;
  opts.dedup = dedup;
  std::size_t states = 0;
  for (auto _ : state) {
    const mc::ExploreResult r = mc::explore(p, opts, {});
    states = r.stats.states;
  }
  state.SetLabel(dedup ? "dedup" : "no-dedup");
  state.counters["states"] = static_cast<double>(states);
}
BENCHMARK(dedup_ablation)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

void tau_compression_ablation(benchmark::State& state) {
  const bool tau = state.range(0) != 0;
  const lang::Program p = lang::parse_litmus(
      litmus::find_test("CoRR2").source).program;
  mc::ExploreOptions opts;
  opts.step.tau_compress = tau;
  std::size_t states = 0;
  for (auto _ : state) {
    const mc::OutcomeResult r = mc::enumerate_outcomes(p, opts);
    states = r.stats.states;
  }
  state.SetLabel(tau ? "tau-compress" : "plain");
  state.counters["states"] = static_cast<double>(states);
}
BENCHMARK(tau_compression_ablation)->Arg(1)->Arg(0)->Unit(
    benchmark::kMillisecond);

void seen_set_footprint(benchmark::State& state) {
  // Deduplicate the same state space once through the fingerprint table
  // and once through string canonical keys; report bytes per unique state.
  const bool fingerprints = state.range(0) != 0;
  const lang::Program p = writers_and_reader(4);
  std::size_t bytes = 0;
  std::size_t states = 0;
  for (auto _ : state) {
    if (fingerprints) {
      mc::SeenSet seen;
      mc::Visitor v;
      v.on_state = [&seen](const interp::Config& c) {
        (void)seen.insert(c.fingerprint());
        return true;
      };
      (void)mc::explore(p, {}, v);
      bytes = seen.bytes();
      states = seen.size();
    } else {
      mc::StringSeenSet seen;
      mc::Visitor v;
      v.on_state = [&seen](const interp::Config& c) {
        (void)seen.insert(c.canonical_key());
        return true;
      };
      (void)mc::explore(p, {}, v);
      bytes = seen.bytes();
      states = seen.size();
    }
  }
  state.SetLabel(fingerprints ? "fingerprint-seen-set" : "string-seen-set");
  state.counters["states"] = static_cast<double>(states);
  state.counters["seen_bytes"] = static_cast<double>(bytes);
  state.counters["bytes_per_state"] =
      static_cast<double>(bytes) / static_cast<double>(states);
}
BENCHMARK(seen_set_footprint)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

/// All six POR modes, in ablation order (args 0..5 of the two catalogue
/// benches below).
constexpr mc::PorMode kPorModes[] = {
    mc::PorMode::kNone,          mc::PorMode::kSleepSets,
    mc::PorMode::kSourceSets,    mc::PorMode::kSourceSetsSleep,
    mc::PorMode::kOptimal,       mc::PorMode::kOptimalParsimonious};

void por_litmus_catalog(benchmark::State& state) {
  // Full exploration (no early abort) of every catalogue program under
  // each POR mode; the counters expose the state/transition reduction
  // plus the stateless-DPOR redundancy (sleep_blocked /
  // redundant_transitions) the optimal wakeup-tree modes remove.
  // Arg: 0 = plain, 1 = sleep sets, 2 = source-set DPOR, 3 = DPOR+sleep,
  // 4 = optimal, 5 = optimal-parsimonious.
  const auto mode = static_cast<std::size_t>(state.range(0));
  mc::ExploreOptions opts;
  opts.por = kPorModes[mode];
  std::size_t states = 0, transitions = 0, pruned = 0, backtracks = 0;
  std::size_t blocked = 0, redundant = 0, reused = 0, recomputed = 0;
  for (auto _ : state) {
    states = transitions = pruned = backtracks = blocked = redundant = 0;
    reused = recomputed = 0;
    for (const auto& test : litmus::catalog()) {
      const auto parsed = lang::parse_litmus(test.source);
      const mc::ExploreResult r = mc::explore(parsed.program, opts, {});
      states += r.stats.states;
      transitions += r.stats.transitions;
      pruned += r.stats.por_pruned;
      backtracks += r.stats.backtracks;
      blocked += r.stats.sleep_blocked;
      redundant += r.stats.redundant_transitions;
      reused += r.stats.enum_threads_reused;
      recomputed += r.stats.enum_threads_recomputed;
    }
  }
  state.SetLabel(mc::por_mode_name(opts.por));
  state.counters["states"] = static_cast<double>(states);
  state.counters["transitions"] = static_cast<double>(transitions);
  state.counters["por_pruned"] = static_cast<double>(pruned);
  state.counters["backtracks"] = static_cast<double>(backtracks);
  state.counters["sleep_blocked"] = static_cast<double>(blocked);
  state.counters["redundant_transitions"] = static_cast<double>(redundant);
  state.counters["enum_threads_reused"] = static_cast<double>(reused);
  state.counters["enum_threads_recomputed"] =
      static_cast<double>(recomputed);

  // Untimed telemetry pass: where each mode's node cost actually goes
  // (phase_share_* counters; the timed loop stays telemetry-off).
  obs::Telemetry tel;
  mc::ExploreOptions topts = opts;
  topts.telemetry = &tel;
  for (const auto& test : litmus::catalog()) {
    const auto parsed = lang::parse_litmus(test.source);
    (void)mc::explore(parsed.program, topts, {});
  }
  rc11bench::record_phase_counters(state, tel.profile());
}
BENCHMARK(por_litmus_catalog)->DenseRange(0, 5)->Unit(
    benchmark::kMillisecond);

void litmus_catalog_throughput(benchmark::State& state) {
  // End-to-end exploration throughput over the whole litmus catalogue
  // (parsing hoisted out of the timed region — states/sec measures the
  // checker, not the front end). This is the headline number the
  // incremental semantics engine is tuned for; BENCH_mc_scaling.json
  // carries states_per_sec / transitions_per_sec / peak_seen_bytes per
  // POR mode — including the optimal wakeup-tree modes — and CI gates
  // every baselined entry against the checked-in baseline
  // (tools/check_bench_regression.py).
  const auto mode = static_cast<std::size_t>(state.range(0));
  std::vector<lang::Program> programs;
  for (const auto& test : litmus::catalog()) {
    programs.push_back(lang::parse_litmus(test.source).program);
  }
  mc::ExploreOptions opts;
  opts.por = kPorModes[mode];
  std::size_t states = 0, transitions = 0, peak = 0;
  std::size_t reused = 0, recomputed = 0;
  for (auto _ : state) {
    states = transitions = peak = reused = recomputed = 0;
    for (const lang::Program& p : programs) {
      const mc::ExploreResult r = mc::explore(p, opts, {});
      states += r.stats.states;
      transitions += r.stats.transitions;
      peak += r.stats.peak_seen_bytes;
      reused += r.stats.enum_threads_reused;
      recomputed += r.stats.enum_threads_recomputed;
    }
  }
  state.SetLabel(mc::por_mode_name(opts.por));
  state.counters["states"] = static_cast<double>(states);
  state.counters["transitions"] = static_cast<double>(transitions);
  state.counters["peak_seen_bytes"] = static_cast<double>(peak);
  state.counters["enum_threads_reused"] = static_cast<double>(reused);
  state.counters["enum_threads_recomputed"] =
      static_cast<double>(recomputed);

  // Untimed telemetry pass over the same hoisted programs; the CI-gated
  // states_per_sec above never sees a bound WorkerScope.
  obs::Telemetry tel;
  mc::ExploreOptions topts = opts;
  topts.telemetry = &tel;
  for (const lang::Program& p : programs) {
    (void)mc::explore(p, topts, {});
  }
  rc11bench::record_phase_counters(state, tel.profile());
}
BENCHMARK(litmus_catalog_throughput)->DenseRange(0, 5)->Unit(
    benchmark::kMillisecond);

void parallel_catalog_workers(benchmark::State& state) {
  // The work-stealing explorer over the whole catalogue. The per-worker
  // counters (w<k>_processed / w<k>_steals / ...) expose the steal rate
  // and load balance that the aggregated totals hide; summed across the
  // catalogue so one JSON entry per worker covers the whole run.
  std::vector<lang::Program> programs;
  for (const auto& test : litmus::catalog()) {
    programs.push_back(lang::parse_litmus(test.source).program);
  }
  mc::ParallelOptions opts;
  opts.workers = static_cast<std::size_t>(state.range(0));
  std::size_t states = 0, transitions = 0;
  std::vector<mc::WorkerStats> workers;
  for (auto _ : state) {
    states = transitions = 0;
    workers.assign(opts.workers, mc::WorkerStats{});
    for (const lang::Program& p : programs) {
      mc::ParallelRunInfo info;
      const mc::OutcomeResult r =
          mc::enumerate_outcomes_parallel(p, opts, &info);
      states += r.stats.states;
      transitions += r.stats.transitions;
      for (std::size_t k = 0; k < info.workers.size(); ++k) {
        const mc::WorkerStats& w = info.workers[k];
        workers[k].processed += w.processed;
        workers[k].enqueued += w.enqueued;
        workers[k].steals += w.steals;
        workers[k].merged += w.merged;
        workers[k].enum_reused += w.enum_reused;
        workers[k].enum_recomputed += w.enum_recomputed;
      }
    }
  }
  state.counters["states"] = static_cast<double>(states);
  state.counters["transitions"] = static_cast<double>(transitions);
  rc11bench::record_worker_counters(state, workers);
}
BENCHMARK(parallel_catalog_workers)->Arg(2)->Arg(4)->Unit(
    benchmark::kMillisecond);

void peterson_bound_scaling(benchmark::State& state) {
  const lang::Program p = vcgen::make_peterson();
  mc::ExploreOptions opts;
  opts.step.loop_bound = static_cast<int>(state.range(0));
  std::size_t states = 0;
  for (auto _ : state) {
    const mc::ExploreResult r = mc::explore(p, opts, {});
    states = r.stats.states;
  }
  state.counters["states"] = static_cast<double>(states);
}
BENCHMARK(peterson_bound_scaling)->DenseRange(0, 3)->Unit(
    benchmark::kMillisecond);

}  // namespace

RC11_BENCH_MAIN("mc_scaling")
