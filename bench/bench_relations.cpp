// Ablation M1a: the relation engine. Transitive closure, composition and
// derived-relation computation as a function of execution size — the hot
// path of validity checking and observability (DESIGN.md section 3).
#include <benchmark/benchmark.h>

#include <random>

#include "rc11/rc11.hpp"

using namespace rc11;

namespace {

util::Relation random_dag(std::size_t n, double density, unsigned seed) {
  std::mt19937 rng(seed);
  std::bernoulli_distribution edge(density);
  util::Relation r(n);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      if (edge(rng)) r.add(a, b);
    }
  }
  return r;
}

void transitive_closure(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const util::Relation r = random_dag(n, 0.1, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(r.transitive_closure());
  }
  state.counters["pairs"] = static_cast<double>(r.pair_count());
}
BENCHMARK(transitive_closure)->RangeMultiplier(2)->Range(8, 256);

void composition(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const util::Relation r = random_dag(n, 0.1, 1);
  const util::Relation s = random_dag(n, 0.1, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(r.compose(s));
  }
}
BENCHMARK(composition)->RangeMultiplier(2)->Range(8, 256);

void acyclicity(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const util::Relation r = random_dag(n, 0.05, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(r.is_acyclic());
  }
}
BENCHMARK(acyclicity)->RangeMultiplier(2)->Range(8, 256);

/// A growing execution: k threads alternately writing and reading one of
/// three variables; measures compute_derived (sw/hb/fr/eco) end to end.
c11::Execution growing_execution(std::size_t events) {
  c11::Execution ex =
      c11::Execution::initial({{0, 0}, {1, 0}, {2, 0}});
  std::mt19937 rng(99);
  for (std::size_t i = 0; i < events; ++i) {
    const c11::ThreadId t = 1 + static_cast<c11::ThreadId>(i % 3);
    const c11::VarId x = static_cast<c11::VarId>(rng() % 3);
    const auto d = c11::compute_derived(ex);
    if (i % 2 == 0) {
      const auto opts = c11::write_options(ex, d, t, x);
      if (!opts.empty()) {
        ex = c11::apply_write(ex, t, x, static_cast<c11::Value>(i), i % 4 == 0,
                              opts[rng() % opts.size()])
                 .next;
      }
    } else {
      const auto opts = c11::read_options(ex, d, t, x);
      if (!opts.empty()) {
        ex = c11::apply_read(ex, t, x, i % 3 == 0,
                             opts[rng() % opts.size()].write)
                 .next;
      }
    }
  }
  return ex;
}

void derived_relations(benchmark::State& state) {
  const c11::Execution ex =
      growing_execution(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(c11::compute_derived(ex));
  }
  state.counters["events"] = static_cast<double>(ex.size());
}
BENCHMARK(derived_relations)->RangeMultiplier(2)->Range(8, 128);

void validity_check(benchmark::State& state) {
  const c11::Execution ex =
      growing_execution(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(c11::check_validity(ex).valid());
  }
  state.counters["events"] = static_cast<double>(ex.size());
}
BENCHMARK(validity_check)->RangeMultiplier(2)->Range(8, 128);

void canonical_key(benchmark::State& state) {
  const c11::Execution ex =
      growing_execution(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ex.canonical_key());
  }
}
BENCHMARK(canonical_key)->RangeMultiplier(2)->Range(8, 128);

// --- Dense vs sparse row representation ---------------------------------------
//
// The hybrid Bitset switches a growing row to the chunked sparse form past
// util::Bitset::sparse_threshold_words(). The pair below pins the
// representations explicitly (huge threshold = always dense, 0 = always
// sparse) over the same *sparse-shaped* input — a program-order-like chain
// with a few long-range edges, the shape of sb/hb rows in large
// executions — so the series exposes the crossover and the footprint gap.
// `pairs` and `rel_bytes` are deterministic, so the JSON report gates them
// (pairs as a drift tripwire, rel_bytes as a lower-is-better memory gate).

/// Restores the global threshold on scope exit (benches run in-process).
class ThresholdGuard {
 public:
  explicit ThresholdGuard(std::size_t words)
      : saved_(util::Bitset::sparse_threshold_words()) {
    util::Bitset::set_sparse_threshold_words(words);
  }
  ~ThresholdGuard() { util::Bitset::set_sparse_threshold_words(saved_); }
  ThresholdGuard(const ThresholdGuard&) = delete;
  ThresholdGuard& operator=(const ThresholdGuard&) = delete;

 private:
  std::size_t saved_;
};

/// k chains of n/k elements with every-8th long-range edge: ~1.1 edges per
/// node regardless of n (row density O(1/n), the sparse-friendly regime).
util::Relation chain_dag(std::size_t n) {
  util::Relation r(n);
  constexpr std::size_t kChains = 4;
  for (std::size_t c = 0; c < kChains; ++c) {
    for (std::size_t a = c; a + kChains < n; a += kChains) {
      r.add(a, a + kChains);
      if (a % 8 == 0 && a + n / 2 < n) r.add(a, a + n / 2);
    }
  }
  return r;
}

void closure_chain_rows(benchmark::State& state, std::size_t threshold) {
  const ThresholdGuard guard(threshold);
  const auto n = static_cast<std::size_t>(state.range(0));
  const util::Relation r = chain_dag(n);
  util::Relation closure;
  for (auto _ : state) {
    closure = r.transitive_closure();
    benchmark::DoNotOptimize(closure);
  }
  state.counters["pairs"] = static_cast<double>(closure.pair_count());
  state.counters["rel_bytes"] = static_cast<double>(r.storage_bytes());
}

void closure_chain_dense(benchmark::State& state) {
  closure_chain_rows(state, ~std::size_t{0} >> 1);
}
BENCHMARK(closure_chain_dense)->RangeMultiplier(4)->Range(64, 4096);

void closure_chain_sparse(benchmark::State& state) {
  closure_chain_rows(state, 0);
}
BENCHMARK(closure_chain_sparse)->RangeMultiplier(4)->Range(64, 4096);

void restrict_compose_rows(benchmark::State& state, std::size_t threshold) {
  const ThresholdGuard guard(threshold);
  const auto n = static_cast<std::size_t>(state.range(0));
  const util::Relation r = chain_dag(n);
  const util::Relation s = r.inverse();
  util::Bitset half(n);
  for (std::size_t i = 0; i < n; i += 2) half.set(i);
  for (auto _ : state) {
    benchmark::DoNotOptimize(r.compose(s).restrict_to(half));
  }
  state.counters["pairs"] = static_cast<double>(r.pair_count());
  state.counters["rel_bytes"] = static_cast<double>(r.storage_bytes());
}

void restrict_compose_dense(benchmark::State& state) {
  restrict_compose_rows(state, ~std::size_t{0} >> 1);
}
BENCHMARK(restrict_compose_dense)->RangeMultiplier(4)->Range(64, 4096);

void restrict_compose_sparse(benchmark::State& state) {
  restrict_compose_rows(state, 0);
}
BENCHMARK(restrict_compose_sparse)->RangeMultiplier(4)->Range(64, 4096);

}  // namespace

#include "bench_report.hpp"

RC11_BENCH_MAIN("relations")
