// Ablation M1a: the relation engine. Transitive closure, composition and
// derived-relation computation as a function of execution size — the hot
// path of validity checking and observability (DESIGN.md section 3).
#include <benchmark/benchmark.h>

#include <random>

#include "rc11/rc11.hpp"

using namespace rc11;

namespace {

util::Relation random_dag(std::size_t n, double density, unsigned seed) {
  std::mt19937 rng(seed);
  std::bernoulli_distribution edge(density);
  util::Relation r(n);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      if (edge(rng)) r.add(a, b);
    }
  }
  return r;
}

void transitive_closure(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const util::Relation r = random_dag(n, 0.1, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(r.transitive_closure());
  }
  state.counters["pairs"] = static_cast<double>(r.pair_count());
}
BENCHMARK(transitive_closure)->RangeMultiplier(2)->Range(8, 256);

void composition(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const util::Relation r = random_dag(n, 0.1, 1);
  const util::Relation s = random_dag(n, 0.1, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(r.compose(s));
  }
}
BENCHMARK(composition)->RangeMultiplier(2)->Range(8, 256);

void acyclicity(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const util::Relation r = random_dag(n, 0.05, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(r.is_acyclic());
  }
}
BENCHMARK(acyclicity)->RangeMultiplier(2)->Range(8, 256);

/// A growing execution: k threads alternately writing and reading one of
/// three variables; measures compute_derived (sw/hb/fr/eco) end to end.
c11::Execution growing_execution(std::size_t events) {
  c11::Execution ex =
      c11::Execution::initial({{0, 0}, {1, 0}, {2, 0}});
  std::mt19937 rng(99);
  for (std::size_t i = 0; i < events; ++i) {
    const c11::ThreadId t = 1 + static_cast<c11::ThreadId>(i % 3);
    const c11::VarId x = static_cast<c11::VarId>(rng() % 3);
    const auto d = c11::compute_derived(ex);
    if (i % 2 == 0) {
      const auto opts = c11::write_options(ex, d, t, x);
      if (!opts.empty()) {
        ex = c11::apply_write(ex, t, x, static_cast<c11::Value>(i), i % 4 == 0,
                              opts[rng() % opts.size()])
                 .next;
      }
    } else {
      const auto opts = c11::read_options(ex, d, t, x);
      if (!opts.empty()) {
        ex = c11::apply_read(ex, t, x, i % 3 == 0,
                             opts[rng() % opts.size()].write)
                 .next;
      }
    }
  }
  return ex;
}

void derived_relations(benchmark::State& state) {
  const c11::Execution ex =
      growing_execution(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(c11::compute_derived(ex));
  }
  state.counters["events"] = static_cast<double>(ex.size());
}
BENCHMARK(derived_relations)->RangeMultiplier(2)->Range(8, 128);

void validity_check(benchmark::State& state) {
  const c11::Execution ex =
      growing_execution(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(c11::check_validity(ex).valid());
  }
  state.counters["events"] = static_cast<double>(ex.size());
}
BENCHMARK(validity_check)->RangeMultiplier(2)->Range(8, 128);

void canonical_key(benchmark::State& state) {
  const c11::Execution ex =
      growing_execution(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ex.canonical_key());
  }
}
BENCHMARK(canonical_key)->RangeMultiplier(2)->Range(8, 128);

}  // namespace

#include "bench_report.hpp"

RC11_BENCH_MAIN("relations")
