// Experiment L1: model-checking cost per litmus test (the paper's
// qualitative "behaviours of the RAR model" table, regenerated with
// timing). One benchmark per catalogue entry; counters report unique
// states, transitions and distinct outcomes.
#include <benchmark/benchmark.h>

#include "bench_report.hpp"
#include "rc11/rc11.hpp"

using namespace rc11;

namespace {

void run_litmus(benchmark::State& state, const litmus::Test& test,
                mc::PorMode por) {
  const lang::ParsedLitmus parsed = lang::parse_litmus(test.source);
  mc::ExploreOptions opts;
  opts.por = por;
  std::size_t states = 0;
  std::size_t transitions = 0;
  std::size_t outcomes = 0;
  std::size_t reused = 0;
  std::size_t recomputed = 0;
  bool pass = true;
  for (auto _ : state) {
    const mc::ReachabilityResult r =
        mc::check_reachable(parsed.program, parsed.condition, opts);
    const mc::OutcomeResult o = mc::enumerate_outcomes(parsed.program, opts);
    benchmark::DoNotOptimize(r.reachable);
    states = o.stats.states;
    transitions = o.stats.transitions;
    outcomes = o.outcomes.size();
    reused = o.stats.enum_threads_reused;
    recomputed = o.stats.enum_threads_recomputed;
    pass = r.reachable ==
           (test.expected == litmus::Expectation::kAllowed);
  }
  state.counters["states"] = static_cast<double>(states);
  state.counters["transitions"] = static_cast<double>(transitions);
  state.counters["outcomes"] = static_cast<double>(outcomes);
  state.counters["enum_threads_reused"] = static_cast<double>(reused);
  state.counters["enum_threads_recomputed"] =
      static_cast<double>(recomputed);
  state.counters["pass"] = pass ? 1 : 0;

  // One untimed telemetry-enabled pass: the timed loop above stays
  // telemetry-off; the phase profile rides along in BENCH_litmus.json.
  obs::Telemetry tel;
  mc::ExploreOptions topts = opts;
  topts.telemetry = &tel;
  const mc::OutcomeResult profiled =
      mc::enumerate_outcomes(parsed.program, topts);
  benchmark::DoNotOptimize(profiled.outcomes.size());
  rc11bench::record_phase_counters(state, tel.profile());
}

// One series per catalogue entry under full exploration (the paper's
// behaviours table) and one under the optimal wakeup-tree reduction (the
// per-test cost of the tentpole mode).
const int register_all = [] {
  for (const litmus::Test& t : litmus::catalog()) {
    benchmark::RegisterBenchmark(
        ("litmus/" + t.name).c_str(),
        [&t](benchmark::State& s) { run_litmus(s, t, mc::PorMode::kNone); });
    benchmark::RegisterBenchmark(
        ("litmus-optimal/" + t.name).c_str(), [&t](benchmark::State& s) {
          run_litmus(s, t, mc::PorMode::kOptimal);
        });
  }
  return 0;
}();

}  // namespace

RC11_BENCH_MAIN("litmus")
