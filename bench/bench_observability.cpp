// Ablation F3: observability computation (EW/OW/CW, Section 3.2) —
// per-thread cost vs. execution size, and the cost split between the
// derived-relation bundle and the set computations themselves.
#include <benchmark/benchmark.h>

#include <random>

#include "rc11/rc11.hpp"

using namespace rc11;

namespace {

c11::Execution growing_execution(std::size_t events, unsigned seed) {
  c11::Execution ex = c11::Execution::initial({{0, 0}, {1, 0}});
  std::mt19937 rng(seed);
  for (std::size_t i = 0; i < events; ++i) {
    const c11::ThreadId t = 1 + static_cast<c11::ThreadId>(i % 4);
    const c11::VarId x = static_cast<c11::VarId>(rng() % 2);
    const auto d = c11::compute_derived(ex);
    if (i % 3 != 0) {
      const auto opts = c11::write_options(ex, d, t, x);
      if (!opts.empty()) {
        ex = c11::apply_write(ex, t, x, static_cast<c11::Value>(i),
                              i % 2 == 0, opts[rng() % opts.size()])
                 .next;
      }
    } else {
      const auto opts = c11::read_options(ex, d, t, x);
      if (!opts.empty()) {
        ex = c11::apply_read(ex, t, x, true, opts[rng() % opts.size()].write)
                 .next;
      }
    }
  }
  return ex;
}

void observability_full(benchmark::State& state) {
  // Derived relations + EW/OW/CW for every thread: what the explorer pays
  // per expanded state.
  const c11::Execution ex =
      growing_execution(static_cast<std::size_t>(state.range(0)), 3);
  for (auto _ : state) {
    const auto d = c11::compute_derived(ex);
    for (c11::ThreadId t = 1; t <= 4; ++t) {
      benchmark::DoNotOptimize(c11::compute_observability(ex, d, t));
    }
  }
  state.counters["events"] = static_cast<double>(ex.size());
}
BENCHMARK(observability_full)->RangeMultiplier(2)->Range(8, 128);

void observability_sets_only(benchmark::State& state) {
  // EW/OW/CW with the derived bundle precomputed: isolates the set
  // computations from the closure cost.
  const c11::Execution ex =
      growing_execution(static_cast<std::size_t>(state.range(0)), 3);
  const auto d = c11::compute_derived(ex);
  for (auto _ : state) {
    for (c11::ThreadId t = 1; t <= 4; ++t) {
      benchmark::DoNotOptimize(c11::compute_observability(ex, d, t));
    }
  }
  state.counters["events"] = static_cast<double>(ex.size());
}
BENCHMARK(observability_sets_only)->RangeMultiplier(2)->Range(8, 128);

void encountered_only(benchmark::State& state) {
  const c11::Execution ex =
      growing_execution(static_cast<std::size_t>(state.range(0)), 3);
  const auto d = c11::compute_derived(ex);
  for (auto _ : state) {
    benchmark::DoNotOptimize(c11::encountered_writes(ex, d, 1));
  }
}
BENCHMARK(encountered_only)->RangeMultiplier(2)->Range(8, 128);

void covered_only(benchmark::State& state) {
  const c11::Execution ex =
      growing_execution(static_cast<std::size_t>(state.range(0)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(c11::covered_writes(ex));
  }
}
BENCHMARK(covered_only)->RangeMultiplier(2)->Range(8, 128);

}  // namespace

#include "bench_report.hpp"

RC11_BENCH_MAIN("observability")
