// Experiment M1b: parallel exploration — the work-stealing parallel
// checker vs. the sequential one on Peterson and on litmus programs.
// On a single-core host this measures overhead rather than speedup; the
// counters confirm both explorers visit the same number of states and
// report, per worker, how much work each did and how much moved between
// workers (w<k>_processed / w<k>_steals / ...).
#include <benchmark/benchmark.h>

#include "bench_report.hpp"
#include "rc11/rc11.hpp"

using namespace rc11;

namespace {

void sequential_peterson(benchmark::State& state) {
  const lang::Program p = vcgen::make_peterson();
  mc::ExploreOptions opts;
  opts.step.loop_bound = static_cast<int>(state.range(0));
  std::size_t states = 0;
  for (auto _ : state) {
    const mc::InvariantResult r =
        mc::check_invariant(p, vcgen::mutual_exclusion(), opts);
    states = r.stats.states;
  }
  state.counters["states"] = static_cast<double>(states);
}
BENCHMARK(sequential_peterson)->DenseRange(1, 2)->Unit(
    benchmark::kMillisecond);

void parallel_peterson(benchmark::State& state) {
  const lang::Program p = vcgen::make_peterson();
  mc::ParallelOptions opts;
  opts.explore.step.loop_bound = 2;
  opts.workers = static_cast<std::size_t>(state.range(0));
  std::size_t states = 0;
  std::size_t steals = 0;
  bool holds = false;
  mc::ParallelRunInfo info;
  for (auto _ : state) {
    info = mc::ParallelRunInfo{};
    const mc::InvariantResult r = mc::check_invariant_parallel(
        p, vcgen::mutual_exclusion(), opts, &info);
    states = r.stats.states;
    holds = r.holds;
    steals = 0;
    for (const auto& w : info.workers) steals += w.steals;
  }
  state.counters["states"] = static_cast<double>(states);
  state.counters["steals"] = static_cast<double>(steals);
  state.counters["holds"] = holds ? 1 : 0;
  rc11bench::record_worker_counters(state, info.workers);

  // Untimed telemetry pass: per-phase cost of the work-stealing explorer
  // (the timed loop stays telemetry-off).
  obs::Telemetry tel;
  mc::ParallelOptions topts = opts;
  topts.explore.telemetry = &tel;
  (void)mc::check_invariant_parallel(p, vcgen::mutual_exclusion(), topts);
  rc11bench::record_phase_counters(state, tel.profile());
}
BENCHMARK(parallel_peterson)->Arg(1)->Arg(2)->Arg(4)->Unit(
    benchmark::kMillisecond);

void parallel_reachability(benchmark::State& state) {
  const lang::ParsedLitmus parsed =
      lang::parse_litmus(litmus::find_test("IRIW_ra").source);
  mc::ParallelOptions opts;
  opts.workers = static_cast<std::size_t>(state.range(0));
  bool reachable = false;
  mc::ParallelRunInfo info;
  for (auto _ : state) {
    info = mc::ParallelRunInfo{};
    const mc::ReachabilityResult r = mc::check_reachable_parallel(
        parsed.program, parsed.condition, opts, &info);
    reachable = r.reachable;
  }
  state.counters["reachable"] = reachable ? 1 : 0;
  rc11bench::record_worker_counters(state, info.workers);
}
BENCHMARK(parallel_reachability)->Arg(1)->Arg(2)->Arg(4)->Unit(
    benchmark::kMillisecond);

}  // namespace

RC11_BENCH_MAIN("parallel")
