// Experiment A1: Peterson verification cost (Theorem 5.8 + the
// Section-5.2 invariants) as a function of the busy-wait loop bound and
// the number of acquisition rounds. This is the reproduction's analogue
// of the paper's hand proof: the machine-checked obligation count grows
// with the bound while the verdict stays HOLDS.
#include <benchmark/benchmark.h>

#include "rc11/rc11.hpp"

using namespace rc11;

namespace {

void mutual_exclusion_vs_bound(benchmark::State& state) {
  const int bound = static_cast<int>(state.range(0));
  const lang::Program p = vcgen::make_peterson();
  mc::ExploreOptions opts;
  opts.step.loop_bound = bound;
  std::size_t states = 0;
  bool holds = false;
  for (auto _ : state) {
    const mc::InvariantResult r =
        mc::check_invariant(p, vcgen::mutual_exclusion(), opts);
    states = r.stats.states;
    holds = r.holds;
  }
  state.counters["states"] = static_cast<double>(states);
  state.counters["holds"] = holds ? 1 : 0;
}
BENCHMARK(mutual_exclusion_vs_bound)->DenseRange(0, 4)->Unit(
    benchmark::kMillisecond);

void invariant_suite_vs_bound(benchmark::State& state) {
  const int bound = static_cast<int>(state.range(0));
  vcgen::PetersonHandles h;
  const lang::Program p = vcgen::make_peterson(&h);
  const auto invariants = vcgen::peterson_invariants(h);
  mc::ExploreOptions opts;
  opts.step.loop_bound = bound;
  std::size_t states = 0;
  bool holds = false;
  for (auto _ : state) {
    const vcgen::InvariantSuiteResult r =
        vcgen::check_invariants(p, invariants, opts);
    states = r.stats.states;
    holds = r.all_hold;
  }
  state.counters["states"] = static_cast<double>(states);
  state.counters["holds"] = holds ? 1 : 0;
}
BENCHMARK(invariant_suite_vs_bound)->DenseRange(0, 2)->Unit(
    benchmark::kMillisecond);

void mutual_exclusion_vs_rounds(benchmark::State& state) {
  const int rounds = static_cast<int>(state.range(0));
  const lang::Program p = vcgen::make_peterson_rounds(rounds);
  mc::ExploreOptions opts;
  // The unfold budget is shared by the outer (rounds) loop and the inner
  // busy-wait: rounds outer unfolds + one spin per acquisition.
  opts.step.loop_bound = 2 * rounds + 1;
  std::size_t states = 0;
  bool holds = false;
  for (auto _ : state) {
    const mc::InvariantResult r =
        mc::check_invariant(p, vcgen::mutual_exclusion(), opts);
    states = r.stats.states;
    holds = r.holds;
  }
  state.counters["states"] = static_cast<double>(states);
  state.counters["holds"] = holds ? 1 : 0;
}
BENCHMARK(mutual_exclusion_vs_rounds)->DenseRange(1, 2)->Unit(
    benchmark::kMillisecond);

void rule_sweep_cost(benchmark::State& state) {
  const lang::Program p = vcgen::make_peterson();
  mc::ExploreOptions opts;
  opts.step.loop_bound = static_cast<int>(state.range(0));
  std::size_t applicable = 0;
  for (auto _ : state) {
    const vcgen::RuleSoundnessResult r = vcgen::check_rule_soundness(p, opts);
    applicable = r.applicable;
    benchmark::DoNotOptimize(r.unsound);
  }
  state.counters["rule_instances"] = static_cast<double>(applicable);
}
BENCHMARK(rule_sweep_cost)->DenseRange(0, 1)->Unit(benchmark::kMillisecond);

}  // namespace

#include "bench_report.hpp"

RC11_BENCH_MAIN("peterson")
